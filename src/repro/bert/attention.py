"""Multi-head self-attention (Figure 1, middle/right panels of the paper).

The module is deliberately decomposed into the same named sub-operations the
accelerator schedules as dataflow stages (Figure 5): the Q/K/V projections
(``X·W_Q`` etc., 8b×4b products on hardware), the score matmul ``Q·Kᵀ``
(8b×8b), softmax, the context matmul ``Attn·V`` (8b×8b), and the output
projection ``O_A·W_s``.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from ..autograd import Tensor
from ..autograd import functional as F
from ..autograd import nn


def split_heads(x: Tensor, num_heads: int) -> Tensor:
    """(batch, seq, hidden) -> (batch, heads, seq, head_dim)."""
    batch, seq, hidden = x.shape
    if hidden % num_heads != 0:
        raise ValueError(f"hidden size {hidden} not divisible by {num_heads} heads")
    head_dim = hidden // num_heads
    return x.reshape(batch, seq, num_heads, head_dim).transpose(0, 2, 1, 3)


def merge_heads(x: Tensor) -> Tensor:
    """(batch, heads, seq, head_dim) -> (batch, seq, hidden)."""
    batch, heads, seq, head_dim = x.shape
    return x.transpose(0, 2, 1, 3).reshape(batch, seq, heads * head_dim)


class BertSelfAttention(nn.Module):
    """Scaled dot-product multi-head self-attention."""

    def __init__(self, config, rng: Optional[np.random.Generator] = None):
        super().__init__()
        rng = rng or np.random.default_rng()
        self.num_heads = config.num_attention_heads
        self.head_dim = config.head_dim
        self.scale = 1.0 / float(np.sqrt(self.head_dim))

        hidden = config.hidden_size
        self.query = nn.Linear(hidden, hidden, rng=rng)
        self.key = nn.Linear(hidden, hidden, rng=rng)
        self.value = nn.Linear(hidden, hidden, rng=rng)
        self.dropout = nn.Dropout(config.attention_dropout_prob)

    def forward(
        self,
        hidden_states: Tensor,
        attention_mask: Optional[np.ndarray] = None,
    ) -> Tensor:
        q = split_heads(self.query(hidden_states), self.num_heads)
        k = split_heads(self.key(hidden_states), self.num_heads)
        v = split_heads(self.value(hidden_states), self.num_heads)

        scores = q.matmul(k.swapaxes(-1, -2)) * self.scale
        if attention_mask is not None:
            scores = scores + Tensor(_additive_mask(attention_mask))
        probs = F.softmax(scores, axis=-1)
        probs = self.dropout(probs)
        context = probs.matmul(v)
        return merge_heads(context)


class BertAttention(nn.Module):
    """Self-attention + output projection + residual Add&LN."""

    def __init__(self, config, rng: Optional[np.random.Generator] = None):
        super().__init__()
        rng = rng or np.random.default_rng()
        self.self_attention = BertSelfAttention(config, rng=rng)
        self.output_dense = nn.Linear(config.hidden_size, config.hidden_size, rng=rng)
        self.output_dropout = nn.Dropout(config.hidden_dropout_prob)
        self.layer_norm = nn.LayerNorm(config.hidden_size, eps=config.layer_norm_eps)

    def forward(
        self,
        hidden_states: Tensor,
        attention_mask: Optional[np.ndarray] = None,
    ) -> Tensor:
        attention_out = self.self_attention(hidden_states, attention_mask)
        projected = self.output_dropout(self.output_dense(attention_out))
        return self.layer_norm(projected + hidden_states)


def _additive_mask(attention_mask: np.ndarray) -> np.ndarray:
    """Convert a (batch, seq) 0/1 mask to additive scores (batch, 1, 1, seq).

    Masked positions receive a large negative bias so their softmax weight
    vanishes; this matches the standard BERT mask convention.
    """
    mask = np.asarray(attention_mask, dtype=np.float32)
    if mask.ndim != 2:
        raise ValueError(f"attention_mask must be (batch, seq), got {mask.shape}")
    return ((1.0 - mask) * -10000.0)[:, None, None, :]
