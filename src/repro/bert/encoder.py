"""BERT encoder layer and stack (Figure 1, left panel).

Each layer is attention + Add&LN + two-layer FFN with GELU + Add&LN — the
exact sequence the accelerator's Figure 5 dataflow walks through stage by
stage (W_Q/W_K/W_V loads, QKᵀ, softmax, Attn·V, W_s, W_ffn1, W_ffn2).
"""

from __future__ import annotations

from typing import List, Optional

import numpy as np

from ..autograd import Tensor
from ..autograd import functional as F
from ..autograd import nn
from .attention import BertAttention


class BertFeedForward(nn.Module):
    """Position-wise feed-forward network: FFN1 + GELU + FFN2 + Add&LN."""

    def __init__(self, config, rng: Optional[np.random.Generator] = None):
        super().__init__()
        rng = rng or np.random.default_rng()
        self.ffn1 = nn.Linear(config.hidden_size, config.intermediate_size, rng=rng)
        self.ffn2 = nn.Linear(config.intermediate_size, config.hidden_size, rng=rng)
        self.dropout = nn.Dropout(config.hidden_dropout_prob)
        self.layer_norm = nn.LayerNorm(config.hidden_size, eps=config.layer_norm_eps)

    def forward(self, hidden_states: Tensor) -> Tensor:
        intermediate = F.gelu(self.ffn1(hidden_states))
        projected = self.dropout(self.ffn2(intermediate))
        return self.layer_norm(projected + hidden_states)


class BertLayer(nn.Module):
    """A single transformer encoder layer."""

    def __init__(self, config, rng: Optional[np.random.Generator] = None):
        super().__init__()
        rng = rng or np.random.default_rng()
        self.attention = BertAttention(config, rng=rng)
        self.feed_forward = BertFeedForward(config, rng=rng)

    def forward(
        self,
        hidden_states: Tensor,
        attention_mask: Optional[np.ndarray] = None,
    ) -> Tensor:
        attended = self.attention(hidden_states, attention_mask)
        return self.feed_forward(attended)


class BertEncoder(nn.Module):
    """Stack of ``num_hidden_layers`` encoder layers."""

    def __init__(self, config, rng: Optional[np.random.Generator] = None):
        super().__init__()
        rng = rng or np.random.default_rng()
        self.layers = nn.ModuleList(
            [BertLayer(config, rng=rng) for _ in range(config.num_hidden_layers)]
        )

    def forward(
        self,
        hidden_states: Tensor,
        attention_mask: Optional[np.ndarray] = None,
        return_all: bool = False,
    ):
        all_states: List[Tensor] = []
        for layer in self.layers:
            hidden_states = layer(hidden_states, attention_mask)
            if return_all:
                all_states.append(hidden_states)
        if return_all:
            return hidden_states, all_states
        return hidden_states
