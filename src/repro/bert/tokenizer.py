"""A small WordPiece-style tokenizer for the synthetic GLUE tasks.

The paper fine-tunes on GLUE with the standard BERT tokenizer.  Our synthetic
tasks use a closed vocabulary, so a greedy longest-match-first wordpiece over
a vocabulary built from the training corpus reproduces the same interface:
``[CLS] tokens... [SEP]`` (single sentence) or
``[CLS] premise [SEP] hypothesis [SEP]`` (sentence pairs, as in MNLI), with
segment ids distinguishing the pair members.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Sequence, Tuple

import numpy as np

PAD_TOKEN = "[PAD]"
UNK_TOKEN = "[UNK]"
CLS_TOKEN = "[CLS]"
SEP_TOKEN = "[SEP]"
SPECIAL_TOKENS = (PAD_TOKEN, UNK_TOKEN, CLS_TOKEN, SEP_TOKEN)


class Vocabulary:
    """Bidirectional token <-> id mapping with reserved special tokens."""

    def __init__(self, tokens: Iterable[str] = ()):
        self._token_to_id: Dict[str, int] = {}
        self._id_to_token: List[str] = []
        for token in SPECIAL_TOKENS:
            self._add(token)
        for token in tokens:
            self.add(token)

    def _add(self, token: str) -> int:
        index = len(self._id_to_token)
        self._token_to_id[token] = index
        self._id_to_token.append(token)
        return index

    def add(self, token: str) -> int:
        """Add ``token`` if absent; return its id."""
        if token in self._token_to_id:
            return self._token_to_id[token]
        return self._add(token)

    def id_of(self, token: str) -> int:
        return self._token_to_id.get(token, self._token_to_id[UNK_TOKEN])

    def token_of(self, index: int) -> str:
        return self._id_to_token[index]

    def __contains__(self, token: str) -> bool:
        return token in self._token_to_id

    def __len__(self) -> int:
        return len(self._id_to_token)

    @property
    def pad_id(self) -> int:
        return self._token_to_id[PAD_TOKEN]

    @property
    def cls_id(self) -> int:
        return self._token_to_id[CLS_TOKEN]

    @property
    def sep_id(self) -> int:
        return self._token_to_id[SEP_TOKEN]

    @property
    def unk_id(self) -> int:
        return self._token_to_id[UNK_TOKEN]

    @classmethod
    def from_corpus(cls, sentences: Iterable[str]) -> "Vocabulary":
        """Build a vocabulary from whitespace-split words of a corpus."""
        seen: Dict[str, None] = {}
        for sentence in sentences:
            for word in sentence.lower().split():
                seen.setdefault(word, None)
        return cls(sorted(seen))


class WordPieceTokenizer:
    """Greedy longest-match tokenizer with ``##`` continuation pieces."""

    def __init__(self, vocab: Vocabulary, max_word_chars: int = 64):
        self.vocab = vocab
        self.max_word_chars = max_word_chars

    def tokenize_word(self, word: str) -> List[str]:
        """Split one word into wordpieces; fall back to [UNK] if impossible."""
        word = word.lower()
        if len(word) > self.max_word_chars:
            return [UNK_TOKEN]
        if word in self.vocab:
            return [word]
        pieces: List[str] = []
        start = 0
        while start < len(word):
            end = len(word)
            piece = None
            while end > start:
                candidate = word[start:end]
                if start > 0:
                    candidate = "##" + candidate
                if candidate in self.vocab:
                    piece = candidate
                    break
                end -= 1
            if piece is None:
                return [UNK_TOKEN]
            pieces.append(piece)
            start = end
        return pieces

    def tokenize(self, text: str) -> List[str]:
        tokens: List[str] = []
        for word in text.split():
            tokens.extend(self.tokenize_word(word))
        return tokens

    def encode(
        self,
        text_a: str,
        text_b: Optional[str] = None,
        max_length: int = 64,
    ) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Encode one example to (input_ids, attention_mask, token_type_ids).

        Truncates the token sequence(s) to fit ``max_length`` including the
        [CLS]/[SEP] markers, then pads with [PAD].
        """
        tokens_a = self.tokenize(text_a)
        tokens_b = self.tokenize(text_b) if text_b is not None else None

        if tokens_b is None:
            budget = max_length - 2
            tokens_a = tokens_a[:budget]
            tokens = [CLS_TOKEN] + tokens_a + [SEP_TOKEN]
            segments = [0] * len(tokens)
        else:
            budget = max_length - 3
            # Truncate the longer sequence first, the standard GLUE recipe.
            while len(tokens_a) + len(tokens_b) > budget:
                if len(tokens_a) >= len(tokens_b):
                    tokens_a.pop()
                else:
                    tokens_b.pop()
            tokens = [CLS_TOKEN] + tokens_a + [SEP_TOKEN] + tokens_b + [SEP_TOKEN]
            segments = [0] * (len(tokens_a) + 2) + [1] * (len(tokens_b) + 1)

        ids = [self.vocab.id_of(token) for token in tokens]
        mask = [1] * len(ids)
        while len(ids) < max_length:
            ids.append(self.vocab.pad_id)
            mask.append(0)
            segments.append(0)

        return (
            np.array(ids, dtype=np.int64),
            np.array(mask, dtype=np.int64),
            np.array(segments, dtype=np.int64),
        )

    def encode_batch(
        self,
        pairs: Sequence[Tuple[str, Optional[str]]],
        max_length: int = 64,
    ) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Encode a batch of (text_a, text_b-or-None) pairs."""
        ids, masks, segments = [], [], []
        for text_a, text_b in pairs:
            i, m, s = self.encode(text_a, text_b, max_length)
            ids.append(i)
            masks.append(m)
            segments.append(s)
        return np.stack(ids), np.stack(masks), np.stack(segments)
