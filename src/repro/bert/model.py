"""Full BERT models: encoder backbone + pooler + task (classification) head.

``BertForSequenceClassification`` is the model quantized in the paper: SST-2
is binary sentiment, MNLI is 3-way entailment.  The task layer runs on the
host CPU in the paper's deployment, so the quantization flow keeps it in
higher precision by default (see ``repro.quant.convert``).
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from ..autograd import Tensor
from ..autograd import functional as F
from ..autograd import nn
from .config import BertConfig
from .embeddings import BertEmbeddings
from .encoder import BertEncoder


class BertPooler(nn.Module):
    """Take the [CLS] position, project and tanh — BERT's sentence summary."""

    def __init__(self, config, rng: Optional[np.random.Generator] = None):
        super().__init__()
        self.dense = nn.Linear(config.hidden_size, config.hidden_size, rng=rng)

    def forward(self, hidden_states: Tensor) -> Tensor:
        cls = hidden_states[:, 0, :]
        return self.dense(cls).tanh()


class BertModel(nn.Module):
    """Embeddings + encoder stack + pooler."""

    def __init__(self, config: BertConfig, rng: Optional[np.random.Generator] = None):
        super().__init__()
        rng = rng or np.random.default_rng()
        self.config = config
        self.embeddings = BertEmbeddings(config, rng=rng)
        self.encoder = BertEncoder(config, rng=rng)
        self.pooler = BertPooler(config, rng=rng)

    def forward(
        self,
        input_ids: np.ndarray,
        attention_mask: Optional[np.ndarray] = None,
        token_type_ids: Optional[np.ndarray] = None,
    ):
        embedded = self.embeddings(input_ids, token_type_ids)
        sequence_output = self.encoder(embedded, attention_mask)
        pooled = self.pooler(sequence_output)
        return sequence_output, pooled


class BertForSequenceClassification(nn.Module):
    """BERT with a classification head — the model FQ-BERT quantizes."""

    def __init__(self, config: BertConfig, rng: Optional[np.random.Generator] = None):
        super().__init__()
        rng = rng or np.random.default_rng()
        self.config = config
        self.bert = BertModel(config, rng=rng)
        self.dropout = nn.Dropout(config.hidden_dropout_prob)
        self.classifier = nn.Linear(config.hidden_size, config.num_labels, rng=rng)

    def forward(
        self,
        input_ids: np.ndarray,
        attention_mask: Optional[np.ndarray] = None,
        token_type_ids: Optional[np.ndarray] = None,
    ) -> Tensor:
        _, pooled = self.bert(input_ids, attention_mask, token_type_ids)
        return self.classifier(self.dropout(pooled))

    def loss(
        self,
        input_ids: np.ndarray,
        labels: np.ndarray,
        attention_mask: Optional[np.ndarray] = None,
        token_type_ids: Optional[np.ndarray] = None,
    ) -> Tensor:
        logits = self.forward(input_ids, attention_mask, token_type_ids)
        return F.cross_entropy(logits, labels)

    def predict(
        self,
        input_ids: np.ndarray,
        attention_mask: Optional[np.ndarray] = None,
        token_type_ids: Optional[np.ndarray] = None,
    ) -> np.ndarray:
        """Return argmax class predictions without building a tape."""
        from ..autograd import no_grad

        with no_grad():
            logits = self.forward(input_ids, attention_mask, token_type_ids)
        return logits.data.argmax(axis=-1)
