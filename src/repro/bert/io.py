"""Checkpoint save/load: serialize any Module's state to a ``.npz`` file.

Keeps the library practical: train once, reuse across example scripts and
the CLI.  The format is one numpy array per ``state_dict`` key plus a JSON
header carrying the model configuration, so a checkpoint is self-describing.
"""

from __future__ import annotations

import json
import pathlib
from typing import Tuple, Union

import numpy as np

from ..autograd.nn import Module
from .config import BertConfig

PathLike = Union[str, pathlib.Path]

_CONFIG_KEY = "__config_json__"
_KIND_KEY = "__model_kind__"


def save_checkpoint(model: Module, path: PathLike, kind: str = "bert") -> None:
    """Write ``model.state_dict()`` plus its config to ``path`` (.npz).

    ``kind`` records which constructor to use on load ("bert" for the float
    classifier, "quant" for FQ-BERT).
    """
    path = pathlib.Path(path)
    state = model.state_dict()
    arrays = dict(state)
    config = getattr(model, "config", None)
    if config is None:
        raise ValueError("model has no .config; cannot write a self-describing checkpoint")
    payload = {"config": config.to_dict()}
    if kind == "quant":
        from dataclasses import asdict

        payload["qconfig"] = asdict(model.qconfig)
    arrays[_CONFIG_KEY] = np.frombuffer(
        json.dumps(payload).encode("utf-8"), dtype=np.uint8
    )
    arrays[_KIND_KEY] = np.frombuffer(kind.encode("utf-8"), dtype=np.uint8)
    path.parent.mkdir(parents=True, exist_ok=True)
    np.savez_compressed(path, **arrays)


def load_checkpoint(path: PathLike) -> Tuple[Module, str]:
    """Rebuild the model recorded at ``path``; returns (model, kind)."""
    path = pathlib.Path(path)
    with np.load(path, allow_pickle=False) as data:
        payload = json.loads(bytes(data[_CONFIG_KEY].tobytes()).decode("utf-8"))
        kind = bytes(data[_KIND_KEY].tobytes()).decode("utf-8")
        state = {
            key: data[key]
            for key in data.files
            if key not in (_CONFIG_KEY, _KIND_KEY)
        }

    config = BertConfig.from_dict(payload["config"])
    if kind == "bert":
        from .model import BertForSequenceClassification

        model: Module = BertForSequenceClassification(config)
    elif kind == "quant":
        from ..quant.qat import QuantConfig
        from ..quant.qbert import QuantBertForSequenceClassification

        qconfig = QuantConfig(**payload["qconfig"])
        model = QuantBertForSequenceClassification(config, qconfig)
    else:
        raise ValueError(f"unknown checkpoint kind {kind!r}")

    model.load_state_dict(state)
    if kind == "quant":
        from ..quant.training import _reload_observers

        _reload_observers(model)
    return model, kind
