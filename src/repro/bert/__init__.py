"""BERT implementation (encoder-only transformer, Figure 1 of the paper)."""

from .attention import BertAttention, BertSelfAttention, merge_heads, split_heads
from .config import BertConfig
from .embeddings import BertEmbeddings
from .encoder import BertEncoder, BertFeedForward, BertLayer
from .io import load_checkpoint, save_checkpoint
from .model import BertForSequenceClassification, BertModel, BertPooler
from .tokenizer import (
    CLS_TOKEN,
    PAD_TOKEN,
    SEP_TOKEN,
    UNK_TOKEN,
    Vocabulary,
    WordPieceTokenizer,
)

__all__ = [
    "BertConfig",
    "BertEmbeddings",
    "BertSelfAttention",
    "BertAttention",
    "BertFeedForward",
    "BertLayer",
    "BertEncoder",
    "BertModel",
    "BertPooler",
    "BertForSequenceClassification",
    "save_checkpoint",
    "load_checkpoint",
    "Vocabulary",
    "WordPieceTokenizer",
    "PAD_TOKEN",
    "UNK_TOKEN",
    "CLS_TOKEN",
    "SEP_TOKEN",
    "split_heads",
    "merge_heads",
]
