"""BERT embedding block: token + position + segment embeddings, LN, dropout.

In the paper's deployment split (Section III-A) the embedding layer runs on
the host CPU — its compute is tiny but the tables are large — and the encoder
stack runs on the FPGA.  The accelerator simulator mirrors that split by
treating the output of this module as the input activation stream.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from ..autograd import Tensor
from ..autograd import nn


class BertEmbeddings(nn.Module):
    """Sum of word, position, and token-type embeddings, normalized."""

    def __init__(self, config, rng: Optional[np.random.Generator] = None):
        super().__init__()
        rng = rng or np.random.default_rng()
        self.config = config
        self.word_embeddings = nn.Embedding(config.vocab_size, config.hidden_size, rng=rng)
        self.position_embeddings = nn.Embedding(
            config.max_position_embeddings, config.hidden_size, rng=rng
        )
        self.token_type_embeddings = nn.Embedding(
            config.type_vocab_size, config.hidden_size, rng=rng
        )
        self.layer_norm = nn.LayerNorm(config.hidden_size, eps=config.layer_norm_eps)
        self.dropout = nn.Dropout(config.hidden_dropout_prob)

    def forward(
        self,
        input_ids: np.ndarray,
        token_type_ids: Optional[np.ndarray] = None,
    ) -> Tensor:
        input_ids = np.asarray(input_ids)
        if input_ids.ndim != 2:
            raise ValueError(f"input_ids must be (batch, seq), got {input_ids.shape}")
        batch, seq_len = input_ids.shape
        if seq_len > self.config.max_position_embeddings:
            raise ValueError(
                f"sequence length {seq_len} exceeds max_position_embeddings "
                f"{self.config.max_position_embeddings}"
            )
        if token_type_ids is None:
            token_type_ids = np.zeros_like(input_ids)
        position_ids = np.broadcast_to(np.arange(seq_len), (batch, seq_len))

        embeddings = (
            self.word_embeddings(input_ids)
            + self.position_embeddings(position_ids)
            + self.token_type_embeddings(token_type_ids)
        )
        embeddings = self.layer_norm(embeddings)
        return self.dropout(embeddings)
