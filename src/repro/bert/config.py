"""BERT model configuration.

``BertConfig`` carries the architectural hyper-parameters of the encoder
stack.  Two presets matter for the reproduction:

- :func:`BertConfig.base` — the BERT-base shape the paper accelerates
  (12 layers, hidden 768, 12 heads).  Used by the accelerator simulator and
  the latency/resource experiments, where only tensor *shapes* matter.
- :func:`BertConfig.tiny` — a small configuration that can actually be
  trained with the numpy autograd engine for the accuracy experiments
  (Figure 3, Tables I and II).
"""

from __future__ import annotations

from dataclasses import dataclass, field, asdict
from typing import Dict


@dataclass(frozen=True)
class BertConfig:
    """Hyper-parameters of a BERT encoder stack."""

    vocab_size: int = 30522
    hidden_size: int = 768
    num_hidden_layers: int = 12
    num_attention_heads: int = 12
    intermediate_size: int = 3072
    max_position_embeddings: int = 512
    type_vocab_size: int = 2
    hidden_dropout_prob: float = 0.1
    attention_dropout_prob: float = 0.1
    layer_norm_eps: float = 1e-5
    num_labels: int = 2

    def __post_init__(self):
        if self.hidden_size % self.num_attention_heads != 0:
            raise ValueError(
                f"hidden_size ({self.hidden_size}) must be divisible by "
                f"num_attention_heads ({self.num_attention_heads})"
            )

    @property
    def head_dim(self) -> int:
        return self.hidden_size // self.num_attention_heads

    @classmethod
    def base(cls, num_labels: int = 2) -> "BertConfig":
        """BERT-base: the configuration the paper's accelerator targets."""
        return cls(num_labels=num_labels)

    @classmethod
    def tiny(
        cls,
        vocab_size: int = 256,
        num_labels: int = 2,
        max_position_embeddings: int = 64,
    ) -> "BertConfig":
        """A trainable-on-CPU configuration for the accuracy experiments."""
        return cls(
            vocab_size=vocab_size,
            hidden_size=64,
            num_hidden_layers=2,
            num_attention_heads=4,
            intermediate_size=128,
            max_position_embeddings=max_position_embeddings,
            hidden_dropout_prob=0.0,
            attention_dropout_prob=0.0,
            num_labels=num_labels,
        )

    @classmethod
    def small(
        cls,
        vocab_size: int = 1024,
        num_labels: int = 2,
        max_position_embeddings: int = 128,
    ) -> "BertConfig":
        """A mid-size configuration for integration tests."""
        return cls(
            vocab_size=vocab_size,
            hidden_size=128,
            num_hidden_layers=4,
            num_attention_heads=4,
            intermediate_size=512,
            max_position_embeddings=max_position_embeddings,
            hidden_dropout_prob=0.0,
            attention_dropout_prob=0.0,
            num_labels=num_labels,
        )

    def to_dict(self) -> Dict:
        return asdict(self)

    @classmethod
    def from_dict(cls, data: Dict) -> "BertConfig":
        return cls(**data)
