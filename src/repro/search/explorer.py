"""Design-space explorer: price every candidate, reduce to a Pareto front.

``evaluate_candidate`` prices one ``(AcceleratorConfig, FpgaDevice)`` pair
through the full analytic stack — the cycle-level schedule, the calibrated
resource model, and the board power model — and memoizes the resulting
:class:`~repro.accel.simulator.SimulationReport` per (design point, device,
model, shape).  The evaluation is pure, so a sweep re-pricing known points
costs dictionary lookups; that memoization is what the ``dse`` bench
suite's ≥1k-evaluations-per-second contract rides on.

``pareto_front`` reduces the feasible candidates to the non-dominated set
under named objectives.  Two deliberate choices:

- **Dominance is per-device.**  A ZCU111 copy of a ZCU102 design has
  identical latency and energy but more of everything free, so cross-device
  dominance would just declare the bigger part "better" — a procurement
  question, not a hardware one.  Each device contributes its own front
  (exactly how Table III reports per-part design points).
- **Resource headroom is a vector objective.**  One design only dominates
  another on headroom if it leaves at least as much of *every* resource
  class free (BRAM, DSP, FF, LUT, URAM).  Collapsing headroom to the
  scalar min would let a DSP-lighter design dominate one that is much
  lighter on LUT/FF — the classic (8,16) vs (16,8) trade Table III itself
  preserves.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from ..accel.config import AcceleratorConfig
from ..accel.devices import FpgaDevice
from ..accel.simulator import AcceleratorSimulator, SimulationReport
from ..bert.config import BertConfig
from .space import Candidate, DesignSpace

DEFAULT_OBJECTIVES: Tuple[str, ...] = ("latency", "energy", "headroom")

# (config, device, model, seq_len, batch_size) -> SimulationReport.  Every
# key component is a frozen dataclass, so the cache is exact; the value is
# shared across callers and must be treated as read-only.
_EVAL_CACHE: Dict[Tuple, SimulationReport] = {}


def evaluate_candidate(
    config: AcceleratorConfig,
    device: FpgaDevice,
    model: BertConfig,
    seq_len: int = 128,
    batch_size: int = 1,
) -> SimulationReport:
    """Price one design point (memoized).

    Args:
        config: The accelerator design point.
        device: The FPGA part it targets.
        model: The served model architecture.
        seq_len: Sequence length of the priced inference.
        batch_size: Batch size of the priced inference.

    Returns:
        The full :class:`~repro.accel.simulator.SimulationReport` (shared
        across calls with equal arguments — read-only).
    """
    key = (config, device, model, seq_len, batch_size)
    report = _EVAL_CACHE.get(key)
    if report is None:
        report = AcceleratorSimulator(config, device).simulate(
            model, seq_len=seq_len, batch_size=batch_size
        )
        _EVAL_CACHE[key] = report
    return report


def clear_evaluation_cache() -> None:
    """Drop every memoized evaluation (bench cold-start hook)."""
    _EVAL_CACHE.clear()


def evaluation_cache_size() -> int:
    """Number of memoized design-point evaluations."""
    return len(_EVAL_CACHE)


def _headroom_vector(report: SimulationReport) -> Tuple[float, ...]:
    """Per-resource utilization, in a fixed class order (minimized)."""
    utilization = report.resources.utilization(report.device)
    return tuple(utilization[name] for name in sorted(utilization))


OBJECTIVES: Dict[str, Callable[[SimulationReport], Tuple[float, ...]]] = {
    "latency": lambda r: (r.latency_ms,),
    "energy": lambda r: (r.energy_per_inference_mj,),
    "power": lambda r: (r.power_watts,),
    "headroom": _headroom_vector,
}


def objective_vector(
    report: SimulationReport, objectives: Sequence[str]
) -> Tuple[float, ...]:
    """The minimized objective vector of one report.

    Args:
        report: A candidate evaluation.
        objectives: Objective names (keys of :data:`OBJECTIVES`); the
            ``headroom`` objective expands to one component per resource
            class.

    Raises:
        ValueError: If an objective name is unknown or none are given.
    """
    if not objectives:
        raise ValueError("need at least one objective")
    vector: List[float] = []
    for name in objectives:
        extractor = OBJECTIVES.get(name)
        if extractor is None:
            raise ValueError(
                f"unknown objective {name!r}; choose from {sorted(OBJECTIVES)}"
            )
        vector.extend(extractor(report))
    return tuple(vector)


def dominates(
    a: SimulationReport,
    b: SimulationReport,
    objectives: Sequence[str] = DEFAULT_OBJECTIVES,
) -> bool:
    """Whether ``a`` Pareto-dominates ``b`` (same device only).

    ``a`` dominates ``b`` when it is no worse on every objective component
    and strictly better on at least one.  Candidates on different devices
    never dominate each other (see the module docstring).
    """
    if a.device.name != b.device.name:
        return False
    va = objective_vector(a, objectives)
    vb = objective_vector(b, objectives)
    return all(x <= y for x, y in zip(va, vb)) and va != vb


def _sort_key(report: SimulationReport) -> Tuple:
    config = report.config
    return (
        report.device.name,
        report.latency_ms,
        report.energy_per_inference_mj,
        config.num_pus,
        config.num_pes,
        config.num_multipliers,
        config.bim_type.value,
        config.frequency_mhz,
    )


def pareto_front(
    reports: Sequence[SimulationReport],
    objectives: Sequence[str] = DEFAULT_OBJECTIVES,
) -> List[SimulationReport]:
    """The non-dominated subset of ``reports``, deterministically ordered.

    Exact duplicates (same objective vector on the same device) are kept
    once, preferring the earliest candidate in enumeration order.  The
    front sorts by (device, latency, energy, knobs) so equal inputs always
    render and serialize identically.

    Args:
        reports: Candidate evaluations (typically the feasible set).
        objectives: Objective names; see :func:`objective_vector`.
    """
    # Objective vectors are precomputed once per report: the dominance
    # filter is O(n^2) pair compares, and rebuilding the (utilization
    # dict, sorted keys) vector inside the loop would make that ~2n^2
    # vector constructions for nothing.
    keyed = [
        (report.device.name, objective_vector(report, objectives), report)
        for report in reports
    ]
    front: List[SimulationReport] = []
    seen: set = set()
    for device, vector, report in keyed:
        if (device, vector) in seen:
            continue
        dominated = any(
            other_device == device
            and all(x <= y for x, y in zip(other_vector, vector))
            and other_vector != vector
            for other_device, other_vector, _ in keyed
        )
        if dominated:
            continue
        seen.add((device, vector))
        front.append(report)
    return sorted(front, key=_sort_key)


@dataclass
class ExplorationResult:
    """One design-space sweep: what was priced and what survived."""

    space: str
    objectives: Tuple[str, ...]
    seq_len: int
    batch_size: int
    seed: int
    budget: Optional[int]
    evaluated: int
    feasible: int
    front: List[SimulationReport]

    def render(self) -> str:
        """Deterministic human-readable front table."""
        lines = [
            f"space: {self.space}  (objectives {', '.join(self.objectives)}; "
            f"seq_len {self.seq_len}, batch {self.batch_size}, seed {self.seed})",
            f"candidates: {self.evaluated} evaluated, {self.feasible} fit "
            f"their device, {len(self.front)} on the Pareto front",
        ]
        header = (
            f"  {'device':<8} {'(H,N,M)':<12} {'bim':<4} {'lat(ms)':>9} "
            f"{'E/inf(mJ)':>10} {'power(W)':>9} {'headroom':>9} {'DSP':>5}"
        )
        lines.append(header)
        for report in self.front:
            config = report.config
            knobs = f"({config.num_pus},{config.num_pes},{config.num_multipliers})"
            lines.append(
                f"  {report.device.name:<8} {knobs:<12} "
                f"{config.bim_type.value:<4} {report.latency_ms:>9.3f} "
                f"{report.energy_per_inference_mj:>10.2f} "
                f"{report.power_watts:>9.2f} {report.headroom:>9.3f} "
                f"{report.resources.dsp48:>5}"
            )
        return "\n".join(lines)

    def to_dict(self) -> Dict:
        """JSON-ready stable document (``repro-search/1``, explore mode)."""
        return {
            "schema": "repro-search/1",
            "mode": "explore",
            "space": self.space,
            "objectives": list(self.objectives),
            "seq_len": self.seq_len,
            "batch_size": self.batch_size,
            "seed": self.seed,
            "budget": self.budget,
            "evaluated": self.evaluated,
            "feasible": self.feasible,
            "front": [report.to_dict() for report in self.front],
        }

    def to_json(self) -> str:
        """Stable JSON (sorted keys) for files and byte-compare tests."""
        return json.dumps(self.to_dict(), indent=2, sort_keys=True) + "\n"


def explore(
    space: DesignSpace,
    model: Optional[BertConfig] = None,
    seq_len: int = 128,
    batch_size: int = 1,
    objectives: Sequence[str] = DEFAULT_OBJECTIVES,
    budget: Optional[int] = None,
    seed: int = 0,
) -> ExplorationResult:
    """Sweep one design space and reduce it to a Pareto front.

    Args:
        space: The knob grid to sweep.
        model: Served model architecture (default: BERT-base, the paper's
            subject).
        seq_len: Sequence length every candidate is priced at.
        batch_size: Batch size every candidate is priced at.
        objectives: Pareto objective names (see :data:`OBJECTIVES`).
        budget: Maximum candidates to evaluate (seeded downsampling when
            the grid is larger; ``None`` = the full grid).
        seed: Sampling seed — equal arguments give byte-identical results.

    Returns:
        The :class:`ExplorationResult` (front ordered deterministically).
    """
    model = model or BertConfig.base()
    # Validates the objective names before any pricing happens.
    objective_names = tuple(objectives)
    for name in objective_names:
        if name not in OBJECTIVES:
            raise ValueError(
                f"unknown objective {name!r}; choose from {sorted(OBJECTIVES)}"
            )
    candidates = space.sample(budget=budget, seed=seed)
    reports = [
        evaluate_candidate(config, device, model, seq_len=seq_len, batch_size=batch_size)
        for config, device in candidates
    ]
    feasible = [report for report in reports if report.fits_device()]
    front = pareto_front(feasible, objective_names)
    return ExplorationResult(
        space=space.name,
        objectives=objective_names,
        seq_len=seq_len,
        batch_size=batch_size,
        seed=seed,
        budget=budget,
        evaluated=len(reports),
        feasible=len(feasible),
        front=front,
    )
