"""SLO-driven capacity planner over the analytic fleet simulator.

Given a traffic scenario, a ladder of candidate design points, and SLO
targets, ``plan_capacity`` searches fleet *plans* — heterogeneous replica
compositions plus optional autoscaler policies — and returns the cheapest
plan that meets the targets.  The inner loop is one analytic
(:mod:`repro.fleet` latency-only) scenario run per plan: timing is exactly
the executed-mode timing, so a plan's verdict is the verdict the full
simulation would give, at a tiny fraction of the cost — that fast path is
what makes exhaustive composition search affordable.

Cost is measured two ways, selectable as the planning objective:

- ``replica-seconds`` — provisioned capacity time: the sum over replicas
  of their live lifetime.  The "how many boards do I rent for how long"
  number.
- ``energy`` — joules: each replica's board power (from the calibrated
  device model, at its design point's DSP usage) times its live lifetime.
  A weak part is cheap per second; a strong part finishes sooner — the
  planner prices that trade.

Feasibility requires the fleet-wide p99 under the target, the shed rate
under the target, and (by default) every tenant's p99 within its own SLO.
With a chaos plan attached the planner turns *redundancy-aware*: each
candidate is additionally replayed under the plan (plus any resilience
policy), and only plans whose targets hold both clean and under chaos are
feasible — "cheapest fleet that survives the named outage", N+1 sizing by
simulation rather than by rule of thumb.
Everything is deterministic: equal arguments give byte-identical plans.
"""

from __future__ import annotations

import itertools
import json
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple, Union

from ..fleet.autoscale import AutoscalePolicy
from ..fleet.chaos import ChaosPlan, ResiliencePolicy
from ..fleet.columnar import run_scenario_columnar
from ..fleet.fleet import FleetConfig, ReplicaSpec
from ..fleet.runner import FleetReport, run_scenario
from ..fleet.scenarios import Scenario, builtin_scenarios
from ..accel.resources import estimate_dsp

PLAN_OBJECTIVES = ("replica-seconds", "energy")
PLAN_ENGINES = ("columnar", "event")


@dataclass(frozen=True)
class SloTarget:
    """What the plan must deliver."""

    p99_ms: float                     # fleet-wide tail target
    max_shed_rate: float = 0.0        # tolerated shed fraction of submitted
    enforce_tenant_slos: bool = True  # each tenant's p99 <= its own slo_ms

    def __post_init__(self):
        if self.p99_ms <= 0:
            raise ValueError(f"p99_ms must be > 0, got {self.p99_ms}")
        if not 0.0 <= self.max_shed_rate <= 1.0:
            raise ValueError(
                f"max_shed_rate must be in [0, 1], got {self.max_shed_rate}"
            )


@dataclass(frozen=True)
class PlanSpec:
    """One candidate plan: a replica composition plus an optional policy."""

    replicas: Tuple[ReplicaSpec, ...]
    autoscale: Optional[AutoscalePolicy] = None

    @property
    def label(self) -> str:
        counts: Dict[str, int] = {}
        for spec in self.replicas:
            counts[spec.label] = counts.get(spec.label, 0) + 1
        parts = [f"{count}x {label}" for label, count in sorted(counts.items())]
        suffix = ""
        if self.autoscale is not None:
            suffix = f" + autoscale(max {self.autoscale.max_replicas})"
        return " + ".join(parts) + suffix


@dataclass
class PlanOutcome:
    """One evaluated plan: its verdict and both cost readings."""

    plan: PlanSpec
    feasible: bool
    p99_ms: float
    shed_rate: float
    goodput_rps: float
    slo_attainment: float
    replica_seconds: float
    energy_j: float
    report: FleetReport
    # chaos replay verdict — None when no chaos plan was supplied.  The
    # headline ``feasible`` already folds this in (clean AND chaos); the
    # split fields say *which* leg a rejected plan failed.
    chaos_feasible: Optional[bool] = None
    chaos_p99_ms: float = 0.0
    chaos_shed_rate: float = 0.0
    chaos_goodput_rps: float = 0.0

    def to_dict(self) -> Dict:
        doc = {
            "plan": self.plan.label,
            "replicas": [spec.label for spec in self.plan.replicas],
            "autoscaled": self.plan.autoscale is not None,
            "feasible": self.feasible,
            "p99_ms": self.p99_ms,
            "shed_rate": self.shed_rate,
            "goodput_rps": self.goodput_rps,
            "slo_attainment": self.slo_attainment,
            "replica_seconds": self.replica_seconds,
            "energy_j": self.energy_j,
        }
        if self.chaos_feasible is not None:
            doc["chaos"] = {
                "feasible": self.chaos_feasible,
                "p99_ms": self.chaos_p99_ms,
                "shed_rate": self.chaos_shed_rate,
                "goodput_rps": self.chaos_goodput_rps,
            }
        return doc


@dataclass
class PlanningResult:
    """The planner's full answer: every evaluated plan plus the winner."""

    scenario: str
    target: SloTarget
    objective: str
    max_replicas: int
    budget: Optional[int]
    seed: int
    outcomes: List[PlanOutcome]
    best: Optional[PlanOutcome]
    truncated: bool  # the budget cut the candidate list short
    chaos_plan: Optional[str] = None  # chaos plan name when redundancy-aware

    def render(self) -> str:
        """Deterministic human-readable planning report."""
        lines = [
            f"scenario: {self.scenario}  (objective {self.objective}, "
            f"p99 <= {self.target.p99_ms:.0f} ms, "
            f"shed <= {self.target.max_shed_rate * 100:.1f}%, seed {self.seed})",
            f"plans evaluated: {len(self.outcomes)}"
            + (" (budget-truncated)" if self.truncated else "")
            + (
                f"  [each replayed under chaos plan {self.chaos_plan!r}]"
                if self.chaos_plan is not None
                else ""
            ),
        ]
        for outcome in self.outcomes:
            verdict = "ok " if outcome.feasible else "MISS"
            chaos_part = ""
            if outcome.chaos_feasible is not None:
                chaos_verdict = "ok" if outcome.chaos_feasible else "MISS"
                chaos_part = (
                    f"  chaos[{chaos_verdict} p99 {outcome.chaos_p99_ms:.2f} ms "
                    f"shed {outcome.chaos_shed_rate * 100:.1f}%]"
                )
            lines.append(
                f"  [{verdict}] {outcome.plan.label:<40} "
                f"p99 {outcome.p99_ms:8.2f} ms  shed {outcome.shed_rate * 100:5.1f}%  "
                f"{outcome.replica_seconds:7.3f} replica-s  {outcome.energy_j:8.3f} J"
                + chaos_part
            )
        if self.best is None:
            lines.append("no feasible plan within the search space")
        else:
            lines.append(
                f"cheapest feasible plan: {self.best.plan.label} "
                f"({self.best.replica_seconds:.3f} replica-s, "
                f"{self.best.energy_j:.3f} J)"
            )
        return "\n".join(lines)

    def to_dict(self) -> Dict:
        """JSON-ready stable document (``repro-search/1``, plan mode)."""
        return {
            "schema": "repro-search/1",
            "mode": "plan",
            "scenario": self.scenario,
            "objective": self.objective,
            "target": {
                "p99_ms": self.target.p99_ms,
                "max_shed_rate": self.target.max_shed_rate,
                "enforce_tenant_slos": self.target.enforce_tenant_slos,
            },
            "max_replicas": self.max_replicas,
            "budget": self.budget,
            "seed": self.seed,
            "chaos_plan": self.chaos_plan,
            "truncated": self.truncated,
            "outcomes": [outcome.to_dict() for outcome in self.outcomes],
            "best": self.best.to_dict() if self.best is not None else None,
        }

    def to_json(self) -> str:
        """Stable JSON (sorted keys) for files and byte-compare tests."""
        return json.dumps(self.to_dict(), indent=2, sort_keys=True) + "\n"


def _plan_candidates(
    designs: Sequence[ReplicaSpec],
    max_replicas: int,
    include_autoscale: bool,
) -> List[PlanSpec]:
    """Every candidate plan, in deterministic cheapest-first order.

    Fixed compositions enumerate by size (all 1-replica plans, then all
    2-replica multisets, ...), so under the replica-seconds objective the
    cheapest candidates are tried first and a budget cut still leaves the
    interesting ones evaluated.  Autoscaled variants (one per design,
    starting from a single replica) follow their base size.
    """
    plans: List[PlanSpec] = []
    for size in range(1, max_replicas + 1):
        for combo in itertools.combinations_with_replacement(designs, size):
            plans.append(PlanSpec(replicas=tuple(combo)))
        if size == 1 and include_autoscale and max_replicas > 1:
            for design in designs:
                plans.append(
                    PlanSpec(
                        replicas=(design,),
                        autoscale=AutoscalePolicy(
                            min_replicas=1, max_replicas=max_replicas
                        ),
                    )
                )
    return plans


def _replica_power_watts(spec: ReplicaSpec) -> float:
    """Board power of one replica at its design point's DSP usage."""
    return spec.device.power(estimate_dsp(spec.accel_config))


def _score_outcome(
    report: FleetReport,
    plan: PlanSpec,
    labels: Dict[str, ReplicaSpec],
    target: SloTarget,
    tenant_slos: Dict[str, float],
) -> PlanOutcome:
    """Fold one fleet report into costs and a feasibility verdict."""
    stats = report.stats
    duration_ms = stats.duration_ms
    replica_seconds = 0.0
    energy_j = 0.0
    for replica in stats.replicas:
        end_ms = duration_ms if replica.retired_ms < 0 else replica.retired_ms
        lifetime_s = max(0.0, end_ms - replica.added_ms) / 1000.0
        replica_seconds += lifetime_s
        spec = labels.get(replica.spec_label)
        if spec is not None:
            energy_j += _replica_power_watts(spec) * lifetime_s
    feasible = (
        stats.submitted > 0
        and stats.completed > 0
        and stats.p99_latency_ms <= target.p99_ms
        and stats.shed_rate <= target.max_shed_rate
    )
    if feasible and target.enforce_tenant_slos:
        for tenant in stats.tenants.values():
            slo_ms = tenant_slos.get(tenant.tenant, float("inf"))
            if tenant.completed and tenant.p99_latency_ms > slo_ms:
                feasible = False
                break
    return PlanOutcome(
        plan=plan,
        feasible=feasible,
        p99_ms=stats.p99_latency_ms,
        shed_rate=stats.shed_rate,
        goodput_rps=stats.goodput_rps,
        slo_attainment=stats.slo_attainment,
        replica_seconds=replica_seconds,
        energy_j=energy_j,
        report=report,
    )


def plan_capacity(
    scenario: Union[str, Scenario],
    designs: Sequence[ReplicaSpec],
    target: SloTarget,
    model,
    tokenizer,
    fleet_config: Optional[FleetConfig] = None,
    max_replicas: int = 3,
    objective: str = "replica-seconds",
    include_autoscale: bool = True,
    budget: Optional[int] = None,
    seed: int = 0,
    rate_scale: float = 1.0,
    duration_scale: float = 1.0,
    engine: str = "columnar",
    chaos: Optional[ChaosPlan] = None,
    resilience: Optional[ResiliencePolicy] = None,
) -> PlanningResult:
    """Search fleet plans and return the cheapest one meeting the SLOs.

    Args:
        scenario: A built-in scenario name or a :class:`Scenario`.
        designs: The candidate design-point ladder (e.g. a Pareto front's
            members as :class:`ReplicaSpec`; labels must be unique).
        target: The SLO targets a feasible plan must meet.
        model: Frozen integer model every replica serves.
        tokenizer: Tokenizer shared by every replica.
        fleet_config: Cluster policy (default: the fleet default).
        max_replicas: Largest composition size (and autoscale ceiling).
        objective: ``"replica-seconds"`` or ``"energy"`` — which cost the
            winner minimizes (the other breaks ties).
        include_autoscale: Also evaluate one autoscaled single-replica
            variant per design.
        budget: Maximum plan evaluations (``None`` = all candidates).
        seed: Scenario seed, passed to every fleet run.
        rate_scale: Rate multiplier for scenario generation.
        duration_scale: Duration multiplier for scenario generation.
        engine: ``"columnar"`` (default) prices every plan through the
            columnar analytic engine, generating the trace columns *once*
            and reusing them across all candidate evaluations;
            ``"event"`` walks the event-loop runner per plan.  The two
            engines emit byte-identical reports, so the planning result
            is the same either way — columnar is simply much faster.
        chaos: Replay every candidate under this chaos plan as well; a
            plan is feasible only if the targets hold *both* clean and
            under chaos.  This is N+1 sizing by simulation: the cheapest
            feasible plan is the cheapest fleet that survives the named
            outage, not just the cheapest that serves the happy path.
        resilience: Resilience policy (retries/hedging/breaker/brownout)
            active during the chaos replay.  Ignored unless ``chaos`` is
            given — the clean leg always runs bare so its costs stay
            comparable across planner invocations.

    Returns:
        The :class:`PlanningResult`; ``best`` is ``None`` when nothing
        within the search space meets the targets.

    Raises:
        ValueError: On an unknown objective or engine, an empty/duplicate
            design ladder, or a non-positive ``max_replicas`` or
            ``budget``.
    """
    if objective not in PLAN_OBJECTIVES:
        raise ValueError(
            f"unknown plan objective {objective!r}; choose from {PLAN_OBJECTIVES}"
        )
    if engine not in PLAN_ENGINES:
        raise ValueError(
            f"unknown plan engine {engine!r}; choose from {PLAN_ENGINES}"
        )
    if not designs:
        raise ValueError("the design ladder must name at least one design point")
    if max_replicas < 1:
        raise ValueError(f"max_replicas must be >= 1, got {max_replicas}")
    if budget is not None and budget < 1:
        raise ValueError(f"budget must be >= 1, got {budget}")
    labels = {spec.label: spec for spec in designs}
    if len(labels) != len(designs):
        raise ValueError(
            "design ladder labels must be unique (the default label omits "
            "BIM type and frequency — give colliding ReplicaSpecs explicit "
            "name= values)"
        )
    fleet_config = fleet_config or FleetConfig()

    candidates = _plan_candidates(list(designs), max_replicas, include_autoscale)
    truncated = budget is not None and len(candidates) > budget
    if truncated:
        candidates = candidates[:budget]

    scenario_name = scenario if isinstance(scenario, str) else scenario.name
    tenant_slos = _scenario_tenant_slos(scenario)
    if engine == "columnar":
        # Generate the trace columns once and share them across every
        # candidate evaluation — the trace depends only on (scenario,
        # seed, scales), never on the plan, and a prebuilt ColumnarTrace
        # carries its own generation seed so the report echoes it.
        resolved = scenario
        if isinstance(resolved, str):
            catalog = builtin_scenarios()
            if resolved not in catalog:
                raise ValueError(
                    f"unknown scenario {resolved!r}; choose from {sorted(catalog)}"
                )
            resolved = catalog[resolved]
        runs = resolved.generate_columns(
            seed=seed, rate_scale=rate_scale, duration_scale=duration_scale
        )
    def _evaluate(plan: PlanSpec, with_chaos: bool) -> FleetReport:
        if engine == "columnar":
            return run_scenario_columnar(
                runs,
                model,
                tokenizer,
                list(plan.replicas),
                fleet_config,
                autoscale=plan.autoscale,
                scale_spec=plan.replicas[0],
                seed=seed,
                chaos=chaos if with_chaos else None,
                resilience=resilience if with_chaos else None,
            )
        return run_scenario(
            scenario,
            model,
            tokenizer,
            list(plan.replicas),
            fleet_config,
            autoscale=plan.autoscale,
            scale_spec=plan.replicas[0],
            seed=seed,
            rate_scale=rate_scale,
            duration_scale=duration_scale,
            analytic=True,
            chaos=chaos if with_chaos else None,
            resilience=resilience if with_chaos else None,
        )

    outcomes: List[PlanOutcome] = []
    for plan in candidates:
        outcome = _score_outcome(
            _evaluate(plan, False), plan, labels, target, tenant_slos
        )
        if chaos is not None:
            degraded = _score_outcome(
                _evaluate(plan, True), plan, labels, target, tenant_slos
            )
            outcome.chaos_feasible = degraded.feasible
            outcome.chaos_p99_ms = degraded.p99_ms
            outcome.chaos_shed_rate = degraded.shed_rate
            outcome.chaos_goodput_rps = degraded.goodput_rps
            outcome.feasible = outcome.feasible and degraded.feasible
        outcomes.append(outcome)

    feasible = [outcome for outcome in outcomes if outcome.feasible]
    best: Optional[PlanOutcome] = None
    if feasible:
        if objective == "replica-seconds":
            key = lambda o: (o.replica_seconds, o.energy_j, len(o.plan.replicas), o.plan.label)
        else:
            key = lambda o: (o.energy_j, o.replica_seconds, len(o.plan.replicas), o.plan.label)
        best = min(feasible, key=key)
    return PlanningResult(
        scenario=scenario_name,
        target=target,
        objective=objective,
        max_replicas=max_replicas,
        budget=budget,
        seed=seed,
        outcomes=outcomes,
        best=best,
        truncated=truncated,
        chaos_plan=chaos.name if chaos is not None else None,
    )


def _scenario_tenant_slos(scenario: Union[str, Scenario]) -> Dict[str, float]:
    """The per-tenant SLOs of a scenario (for the tenant feasibility check)."""
    from ..fleet.scenarios import builtin_scenarios

    if isinstance(scenario, str):
        catalog = builtin_scenarios()
        if scenario not in catalog:
            return {}
        scenario = catalog[scenario]
    return {tenant.name: tenant.slo_ms for tenant in scenario.tenants}
