"""Design-space exploration and SLO-driven capacity planning.

The layer that turns the simulator from a point-evaluator into an
optimizer: :mod:`repro.search.space` defines seeded knob grids over
:class:`~repro.accel.config.AcceleratorConfig` and the FPGA parts;
:mod:`repro.search.explorer` prices every candidate through the analytic
stack (memoized) and reduces the feasible set to a deterministic Pareto
front; :mod:`repro.search.planner` searches fleet compositions and
autoscaler policies with the analytic fleet simulator as its inner loop,
returning the cheapest plan that meets p99/shed SLO targets.

``repro.cli search`` fronts both halves; the ``dse`` bench suite pins the
throughput (≥1k candidate evaluations per second) and correctness (the
paper's Table III design points stay on the front) contracts.
"""

from .explorer import (
    DEFAULT_OBJECTIVES,
    ExplorationResult,
    OBJECTIVES,
    clear_evaluation_cache,
    dominates,
    evaluate_candidate,
    evaluation_cache_size,
    explore,
    objective_vector,
    pareto_front,
)
from .planner import (
    PLAN_OBJECTIVES,
    PlanOutcome,
    PlanSpec,
    PlanningResult,
    SloTarget,
    plan_capacity,
)
from .space import Candidate, DesignSpace, SPACE_NAMES, builtin_spaces

__all__ = [
    "Candidate",
    "DEFAULT_OBJECTIVES",
    "DesignSpace",
    "ExplorationResult",
    "OBJECTIVES",
    "PLAN_OBJECTIVES",
    "PlanOutcome",
    "PlanSpec",
    "PlanningResult",
    "SPACE_NAMES",
    "SloTarget",
    "builtin_spaces",
    "clear_evaluation_cache",
    "dominates",
    "evaluate_candidate",
    "evaluation_cache_size",
    "explore",
    "objective_vector",
    "pareto_front",
    "plan_capacity",
]
