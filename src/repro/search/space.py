"""Design-space definition: seeded enumeration/sampling over accelerator knobs.

A :class:`DesignSpace` is a named grid over the :class:`AcceleratorConfig`
knobs the paper's Table III varies by hand — H (``num_pus``), N
(``num_pes``), M (``num_multipliers``) — plus the knobs it holds fixed
(BIM type, clock, buffering).  Every axis is validated *eagerly* with the
knob's name in the error, candidates enumerate in one deterministic nested
order, and spaces too large for a budget are downsampled with a seeded RNG
— same seed, same candidate list, byte for byte.

The candidate unit is a ``(AcceleratorConfig, FpgaDevice)`` pair: resource
feasibility, power, and (on URAM-bearing parts) memory mapping all depend
on the device, so the device is a knob like any other.
"""

from __future__ import annotations

import zlib
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

import numpy as np

from ..accel.bim import BimType
from ..accel.config import AcceleratorConfig, validate_knob
from ..accel.devices import FpgaDevice, ZCU102, ZCU111

Candidate = Tuple[AcceleratorConfig, FpgaDevice]

# The knob axes, in enumeration order (outermost first).  Devices come
# first so per-device blocks stay contiguous in reports.
_AXES = ("num_pus", "num_pes", "num_multipliers", "bim_type", "frequency_mhz")


@dataclass(frozen=True)
class DesignSpace:
    """A named grid over accelerator knobs and target devices."""

    name: str
    devices: Tuple[FpgaDevice, ...] = (ZCU102,)
    num_pus: Tuple[int, ...] = (12,)
    num_pes: Tuple[int, ...] = (8,)
    num_multipliers: Tuple[int, ...] = (16,)
    bim_type: Tuple[BimType, ...] = (BimType.TYPE_A,)
    frequency_mhz: Tuple[float, ...] = (214.0,)
    base: AcceleratorConfig = field(default_factory=AcceleratorConfig)

    def __post_init__(self):
        if not self.name:
            raise ValueError("a design space needs a name")
        if not self.devices:
            raise ValueError("devices axis must name at least one FPGA part")
        for axis in _AXES:
            values = getattr(self, axis)
            if not values:
                raise ValueError(f"{axis} axis must not be empty")
            if len(set(values)) != len(values):
                raise ValueError(f"{axis} axis has duplicate values: {values}")
            if axis != "bim_type":
                for value in values:
                    validate_knob(axis, value)  # eager, names the knob

    @property
    def size(self) -> int:
        """Number of candidates in the full grid."""
        count = len(self.devices)
        for axis in _AXES:
            count *= len(getattr(self, axis))
        return count

    def candidates(self) -> List[Candidate]:
        """The full grid in deterministic nested-loop order.

        Devices vary slowest, then the knob axes in declaration order —
        the order reports and samples index into.
        """
        grid: List[Candidate] = []
        for device in self.devices:
            for h in self.num_pus:
                for n in self.num_pes:
                    for m in self.num_multipliers:
                        for bim in self.bim_type:
                            for freq in self.frequency_mhz:
                                grid.append(
                                    (
                                        self.base.with_(
                                            num_pus=h,
                                            num_pes=n,
                                            num_multipliers=m,
                                            bim_type=bim,
                                            frequency_mhz=freq,
                                        ),
                                        device,
                                    )
                                )
        return grid

    def sample(self, budget: Optional[int] = None, seed: int = 0) -> List[Candidate]:
        """At most ``budget`` candidates, seeded and deterministic.

        With no budget (or a budget covering the grid) this is exactly
        :meth:`candidates`.  Otherwise a seeded RNG draws ``budget``
        distinct grid indices without replacement and returns them in
        enumeration order, so a sample is always a subsequence of the full
        grid — equal ``(space, budget, seed)`` gives the identical list.

        Args:
            budget: Maximum candidates to return (``None`` = the full grid).
            seed: Sampling seed (unused when the grid fits the budget).

        Raises:
            ValueError: If ``budget`` is not positive.
        """
        if budget is not None and budget < 1:
            raise ValueError(f"budget must be >= 1, got {budget}")
        grid = self.candidates()
        if budget is None or len(grid) <= budget:
            return grid
        rng = np.random.default_rng([seed, zlib.crc32(self.name.encode("utf-8"))])
        picks = rng.choice(len(grid), size=budget, replace=False)
        return [grid[i] for i in sorted(picks.tolist())]


def builtin_spaces() -> Dict[str, DesignSpace]:
    """The named space catalog behind ``repro.cli search --space``.

    - ``table3`` — the paper's knob space: H fixed at 12 (one PU per
      BERT-base head), N and M swept over {4, 8, 16, 32} on both parts.
      Contains the three hand-picked Table III design points.
    - ``small`` — a 4-point ZCU102 grid for doctests and quick smoke runs.
    - ``wide`` — H, N, M, and BIM type all swept on both parts (320
      candidates): the space that makes seeded sampling and the ≥1k
      evals/s throughput contract meaningful.
    """
    return {
        space.name: space
        for space in (
            DesignSpace(
                name="table3",
                devices=(ZCU102, ZCU111),
                num_pes=(4, 8, 16, 32),
                num_multipliers=(4, 8, 16, 32),
            ),
            DesignSpace(
                name="small",
                devices=(ZCU102,),
                num_pes=(4, 8),
                num_multipliers=(8, 16),
            ),
            DesignSpace(
                name="wide",
                devices=(ZCU102, ZCU111),
                num_pus=(4, 8, 12, 16),
                num_pes=(2, 4, 8, 16, 32),
                num_multipliers=(4, 8, 16, 32),
                bim_type=(BimType.TYPE_A, BimType.TYPE_B),
            ),
        )
    }


SPACE_NAMES: Tuple[str, ...] = tuple(sorted(builtin_spaces()))
