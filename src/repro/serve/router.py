"""Load-balancing router over N simulated accelerator instances.

Each device is one :class:`repro.accel.AcceleratorSimulator`.  The fleet
may be *homogeneous* (the default: ``num_devices`` copies of one design
point) or *heterogeneous* — pass ``specs`` with one
``(AcceleratorConfig, FpgaDevice)`` pair per instance to mix design
points (e.g. a ZCU102 (8, 16) next to a ZCU111 (16, 16)).

Dispatch is earliest-*finish*: a batch runs on the device that completes
it soonest, accounting for both the device's queue and its design point's
service time for the batch's *padded* shape (``seq_len = bucket``,
``batch_size = len(batch)``).  For homogeneous fleets this degenerates to
the classic earliest-available rule.  Service times come from the
simulator's cycle-level schedule, so SLO accounting and balancing both see
the same latency model the paper's Tables III/IV use.

Latency estimates are memoized per (design point, seq_len, batch_size) —
the scheduler is analytic, so a shape's latency never changes across
calls, and identical design points share cache entries.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from ..accel.config import AcceleratorConfig
from ..accel.devices import FpgaDevice, ZCU102
from ..accel.simulator import AcceleratorSimulator
from ..bert.config import BertConfig

DeviceSpec = Tuple[AcceleratorConfig, FpgaDevice]


@dataclass
class DeviceState:
    """One accelerator instance's timeline."""

    device_id: int
    simulator: AcceleratorSimulator
    spec: DeviceSpec
    busy_until_ms: float = 0.0
    busy_ms: float = 0.0
    batches_served: int = 0
    requests_served: int = 0


@dataclass(frozen=True)
class Dispatch:
    """Where and when one batch executes."""

    device_id: int
    start_ms: float
    finish_ms: float
    service_ms: float


class DeviceRouter:
    """Earliest-finish routing across (possibly heterogeneous) accelerators."""

    def __init__(
        self,
        model_config: BertConfig,
        num_devices: int = 1,
        accel_config: AcceleratorConfig = None,
        device: FpgaDevice = ZCU102,
        specs: Optional[Sequence[DeviceSpec]] = None,
    ):
        """Args:
            model_config: Served model architecture (drives the schedule).
            num_devices: Fleet size for the homogeneous case (ignored when
                ``specs`` is given).
            accel_config: Design point of the homogeneous fleet.
            device: FPGA part of the homogeneous fleet.
            specs: Optional explicit per-instance ``(config, device)``
                pairs — the heterogeneous fleet constructor.

        Raises:
            ValueError: If the fleet would be empty.
        """
        if specs is None:
            if num_devices < 1:
                raise ValueError(f"num_devices must be >= 1, got {num_devices}")
            specs = [(accel_config or AcceleratorConfig(), device)] * num_devices
        specs = list(specs)
        if not specs:
            raise ValueError("specs must name at least one device")
        self.model_config = model_config
        self.devices: List[DeviceState] = [
            DeviceState(
                device_id=i,
                simulator=AcceleratorSimulator(cfg, dev),
                spec=(cfg, dev),
            )
            for i, (cfg, dev) in enumerate(specs)
        ]
        self._latency_cache: Dict[Tuple[DeviceSpec, int, int], float] = {}
        # Gray-failure seam: a straggling node serves every batch this
        # many times slower than the nominal schedule.  1.0 (the default)
        # takes no extra float op, so healthy runs keep their exact bytes;
        # the fleet's chaos layer toggles it over gray windows.
        self.slowdown = 1.0

    def estimate_latency_ms(
        self, seq_len: int, batch_size: int, device_id: int = 0
    ) -> float:
        """Cycle-accurate latency of one (padded) batch on one device.

        Args:
            seq_len: Padded sequence length (the batch's bucket).
            batch_size: Number of rows in the batch.
            device_id: Which instance's design point to price (instances
                sharing a design point share cache entries).

        Returns:
            Service milliseconds from the simulator's cycle-level schedule,
            memoized per ``(design point, seq_len, batch_size)`` — and cheap
            even on a miss, because the workload derivation and the
            scheduler's own results are memoized underneath.
        """
        state = self.devices[device_id]
        key = (state.spec, seq_len, batch_size)
        cached = self._latency_cache.get(key)
        if cached is None:
            report = state.simulator.simulate(
                self.model_config, seq_len=seq_len, batch_size=batch_size
            )
            cached = self._latency_cache[key] = report.latency_ms
        return cached

    def dispatch(self, seq_len: int, batch_size: int, ready_ms: float) -> Dispatch:
        """Place a batch on the earliest-finishing device; advance its clock.

        A slow-but-idle device can lose to a fast-but-queued one: the rule
        minimizes ``max(ready, busy_until) + service``, with ties broken by
        lower ``busy_until`` then device id — which reduces exactly to
        earliest-available for homogeneous fleets.

        Args:
            seq_len: Padded sequence length (the batch's bucket).
            batch_size: Number of rows in the batch.
            ready_ms: Simulated time the batch became ready to run.

        Returns:
            The :class:`Dispatch` record (device, start/finish/service times).
        """

        def finish_key(state: DeviceState) -> Tuple[float, float, int]:
            service = self.estimate_latency_ms(seq_len, batch_size, state.device_id)
            start = max(ready_ms, state.busy_until_ms)
            return (start + service, state.busy_until_ms, state.device_id)

        device = min(self.devices, key=finish_key)
        service_ms = self.estimate_latency_ms(seq_len, batch_size, device.device_id)
        if self.slowdown != 1.0:
            # Gray window: realized service stretches; device selection
            # (above) deliberately stays nominal — a router cannot know a
            # node went gray, only the circuit breaker can observe it.
            service_ms = service_ms * self.slowdown
        start_ms = max(ready_ms, device.busy_until_ms)
        finish_ms = start_ms + service_ms
        device.busy_until_ms = finish_ms
        device.busy_ms += service_ms
        device.batches_served += 1
        device.requests_served += batch_size
        return Dispatch(
            device_id=device.device_id,
            start_ms=start_ms,
            finish_ms=finish_ms,
            service_ms=service_ms,
        )

    def block_until(self, ready_ms: float) -> None:
        """Push every instance's availability to at least ``ready_ms``.

        The cold-start hook: a replica that just booted spends its weight
        load + warm-up window unavailable, so the fleet layer blocks the
        router for that long before the first batch can start.
        """
        for state in self.devices:
            state.busy_until_ms = max(state.busy_until_ms, ready_ms)

    def busy_ms_by_device(self) -> Dict[int, float]:
        """Total busy milliseconds accumulated per device id."""
        return {d.device_id: d.busy_ms for d in self.devices}

    @property
    def num_devices(self) -> int:
        return len(self.devices)


def service_table(
    model_config: BertConfig,
    accel_config: AcceleratorConfig,
    device: FpgaDevice,
    buckets: Sequence[int],
    max_batch_size: int,
):
    """Batch-price table for one design point: ``table[b][s]`` ms.

    The columnar fleet engine's pricing hook: every service time a fleet
    run can ever dispatch, precomputed as a ``(len(buckets),
    max_batch_size + 1)`` float64 array (column 0 unused — batch sizes are
    1-based).  Prices come from the *same* memoized simulator call
    :meth:`DeviceRouter.estimate_latency_ms` uses, so the table and the
    event-loop router agree bit for bit.

    Args:
        model_config: Served model architecture.
        accel_config: The design point to price.
        device: FPGA part hosting it.
        buckets: Padded sequence lengths (the batcher's buckets).
        max_batch_size: Largest batch the batcher can flush.

    Returns:
        ``numpy.ndarray`` of shape ``(len(buckets), max_batch_size + 1)``.
    """
    import numpy as np

    simulator = AcceleratorSimulator(accel_config, device)
    table = np.zeros((len(buckets), max_batch_size + 1), dtype=np.float64)
    for b, bucket in enumerate(buckets):
        for size in range(1, max_batch_size + 1):
            report = simulator.simulate(model_config, seq_len=bucket, batch_size=size)
            table[b, size] = report.latency_ms
    return table
