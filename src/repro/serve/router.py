"""Load-balancing router over N simulated accelerator instances.

Each device is one :class:`repro.accel.AcceleratorSimulator` (same design
point, independent timeline).  Dispatch is earliest-available-device: the
batch starts on the device whose queue drains first.  Service time comes
from the simulator's cycle-level schedule for the batch's *padded* shape
(``seq_len = bucket``, ``batch_size = len(batch)``), so SLO accounting and
balancing both see the same latency model the paper's Tables III/IV use.

Latency estimates are memoized per (device, seq_len, batch_size) — the
scheduler is analytic, so a shape's latency never changes across calls.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

from ..accel.config import AcceleratorConfig
from ..accel.devices import FpgaDevice, ZCU102
from ..accel.simulator import AcceleratorSimulator
from ..bert.config import BertConfig


@dataclass
class DeviceState:
    """One accelerator instance's timeline."""

    device_id: int
    simulator: AcceleratorSimulator
    busy_until_ms: float = 0.0
    busy_ms: float = 0.0
    batches_served: int = 0
    requests_served: int = 0


@dataclass(frozen=True)
class Dispatch:
    """Where and when one batch executes."""

    device_id: int
    start_ms: float
    finish_ms: float
    service_ms: float


class DeviceRouter:
    """Earliest-available routing across homogeneous accelerator instances."""

    def __init__(
        self,
        model_config: BertConfig,
        num_devices: int = 1,
        accel_config: AcceleratorConfig = None,
        device: FpgaDevice = ZCU102,
    ):
        if num_devices < 1:
            raise ValueError(f"num_devices must be >= 1, got {num_devices}")
        accel_config = accel_config or AcceleratorConfig()
        self.model_config = model_config
        self.devices: List[DeviceState] = [
            DeviceState(device_id=i, simulator=AcceleratorSimulator(accel_config, device))
            for i in range(num_devices)
        ]
        self._latency_cache: Dict[Tuple[int, int], float] = {}

    def estimate_latency_ms(self, seq_len: int, batch_size: int) -> float:
        """Cycle-accurate latency of one (padded) batch on one device.

        Args:
            seq_len: Padded sequence length (the batch's bucket).
            batch_size: Number of rows in the batch.

        Returns:
            Service milliseconds from the simulator's cycle-level schedule,
            memoized per ``(seq_len, batch_size)`` — and cheap even on a
            miss, because the workload derivation and the scheduler's own
            results are memoized underneath.
        """
        key = (seq_len, batch_size)
        cached = self._latency_cache.get(key)
        if cached is None:
            report = self.devices[0].simulator.simulate(
                self.model_config, seq_len=seq_len, batch_size=batch_size
            )
            cached = self._latency_cache[key] = report.latency_ms
        return cached

    def dispatch(self, seq_len: int, batch_size: int, ready_ms: float) -> Dispatch:
        """Place a batch on the earliest-available device and advance its clock.

        Args:
            seq_len: Padded sequence length (the batch's bucket).
            batch_size: Number of rows in the batch.
            ready_ms: Simulated time the batch became ready to run.

        Returns:
            The :class:`Dispatch` record (device, start/finish/service times).
        """
        device = min(self.devices, key=lambda d: (d.busy_until_ms, d.device_id))
        service_ms = self.estimate_latency_ms(seq_len, batch_size)
        start_ms = max(ready_ms, device.busy_until_ms)
        finish_ms = start_ms + service_ms
        device.busy_until_ms = finish_ms
        device.busy_ms += service_ms
        device.batches_served += 1
        device.requests_served += batch_size
        return Dispatch(
            device_id=device.device_id,
            start_ms=start_ms,
            finish_ms=finish_ms,
            service_ms=service_ms,
        )

    def busy_ms_by_device(self) -> Dict[int, float]:
        """Total busy milliseconds accumulated per device id."""
        return {d.device_id: d.busy_ms for d in self.devices}

    @property
    def num_devices(self) -> int:
        return len(self.devices)
