"""Dynamic-batching inference serving over the integer FQ-BERT engine.

The request-level layer the ROADMAP's production-scale north star builds
on: text in, logits + latency accounting out.

- :mod:`cache` — LRU tokenization cache
- :mod:`batching` — dynamic batcher with sequence-length bucketing
- :mod:`router` — load balancing over N simulated accelerator instances
- :mod:`engine` — :class:`ServingEngine` (``submit`` / ``drain`` / ``stats``)
- :mod:`metrics` — :class:`ServingStats` (latency percentiles, throughput,
  cache hit rate, padding efficiency, SLO attainment)

Logits are bit-identical to one-at-a-time integer-model inference; time is
the accelerator simulator's cycle-level schedule under a deterministic
simulated clock, so every serving run reproduces exactly.
"""

from .batching import Batch, BatchingPolicy, DynamicBatcher, PendingRequest
from .cache import LRUCache
from .engine import (
    Encoding,
    Request,
    RequestResult,
    ServingConfig,
    ServingEngine,
    TraceRequest,
    generate_trace,
)
from .metrics import ServingStats, build_stats, percentile, percentile_sorted
from .router import DeviceRouter, DeviceSpec, DeviceState, Dispatch

__all__ = [
    "Batch",
    "BatchingPolicy",
    "DynamicBatcher",
    "PendingRequest",
    "LRUCache",
    "Encoding",
    "Request",
    "RequestResult",
    "ServingConfig",
    "ServingEngine",
    "TraceRequest",
    "generate_trace",
    "ServingStats",
    "build_stats",
    "percentile",
    "percentile_sorted",
    "DeviceRouter",
    "DeviceSpec",
    "DeviceState",
    "Dispatch",
]
