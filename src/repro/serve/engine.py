"""The serving engine: request path over the integer model + simulator.

``ServingEngine`` is an offline, trace-driven serving simulator with a real
execution path: logits come from an actual
:class:`~repro.quant.integer_model.IntegerBertForSequenceClassification`
batched forward, while *time* comes from the accelerator simulator's
cycle-level schedule.  The clock is simulated (milliseconds, driven by the
request trace), so a run is deterministic — same trace, same stats, same
logits, every time.

Request lifecycle::

    submit(text)  ->  tokenize (LRU cache)  ->  bucket queue (DynamicBatcher)
                 ->  flush (size/deadline)  ->  DeviceRouter dispatch
                 ->  batched integer encoder + per-row host head
                 ->  RequestResult (logits, timing, SLO)

Bit-exactness contract: the integer encoder is exact integer arithmetic,
invariant to batch composition and (because attention masking excludes
padded keys and the head reads only the [CLS] row) to padded length; the
float host head runs per row.  Engine logits are therefore bit-identical
to one-at-a-time ``model.forward`` on the same encodings — the property
``tests/serve/test_engine.py`` locks in.

Latency-only ("analytic") mode: with ``ServingConfig(analytic=True)`` the
engine skips the model forward entirely and prices each batch purely from
the simulator's memoized schedule.  Every timing, SLO, and stats quantity
is byte-identical to executed mode (time never came from the host model in
the first place); only logits/predictions are absent.  This decouples
trace scale from model FLOPs — the mode behind million-request fleet
simulations.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..accel.config import AcceleratorConfig
from ..accel.devices import FpgaDevice, ZCU102
from ..bert.tokenizer import WordPieceTokenizer
from ..quant.integer_model import IntegerBertForSequenceClassification
from .batching import Batch, BatchingPolicy, DynamicBatcher, PendingRequest
from .cache import LRUCache
from .metrics import ServingStats, build_stats
from .router import DeviceRouter

# The shared placeholder logits of analytic mode (latency-only execution):
# one frozen empty array instead of a fresh allocation per request.
_ANALYTIC_LOGITS = np.zeros(0)
_ANALYTIC_LOGITS.setflags(write=False)


@dataclass(frozen=True)
class ServingConfig:
    """Engine-level policy: batching, fleet size, cache, SLO.

    ``analytic`` selects the latency-only execution mode: batches are
    priced by the accelerator simulator's schedule exactly as in executed
    mode, but the integer model forward is skipped, so results carry no
    logits (``prediction`` is -1).  Every timing and stats quantity is
    identical to executed mode — the mode only decouples simulation scale
    from model FLOPs (million-request traces in seconds).
    """

    max_batch_size: int = 8
    max_wait_ms: float = 10.0
    buckets: Tuple[int, ...] = (16, 32, 48, 64)
    num_devices: int = 1
    cache_capacity: int = 1024
    slo_ms: Optional[float] = None
    analytic: bool = False

    def batching_policy(self) -> BatchingPolicy:
        return BatchingPolicy(
            max_batch_size=self.max_batch_size,
            max_wait_ms=self.max_wait_ms,
            buckets=self.buckets,
        )

    @property
    def max_seq_len(self) -> int:
        return self.buckets[-1]


@dataclass(frozen=True)
class Encoding:
    """Cached tokenizer output, padded to ``max_seq_len``."""

    input_ids: np.ndarray
    attention_mask: np.ndarray
    token_type_ids: np.ndarray
    length: int  # true token count (mask sum)


@dataclass
class Request:
    """One in-flight classification request."""

    request_id: int
    text_a: str
    text_b: Optional[str]
    arrival_ms: float
    encoding: Encoding
    cache_hit: bool


@dataclass
class RequestResult:
    """Completed request: model output plus full timing breakdown."""

    request_id: int
    logits: np.ndarray
    prediction: int
    arrival_ms: float
    start_ms: float        # batch execution start on the device
    finish_ms: float
    queue_ms: float        # arrival -> execution start
    service_ms: float      # batch residency on the device
    latency_ms: float      # arrival -> finish (the SLO quantity)
    device_id: int
    batch_id: int
    batch_size: int
    bucket: int
    length: int
    cache_hit: bool
    slo_met: bool


@dataclass(frozen=True)
class TraceRequest:
    """One line of an offline request trace."""

    text_a: str
    text_b: Optional[str]
    arrival_ms: float


class ServingEngine:
    """Dynamic-batching inference engine over the integer FQ-BERT model."""

    def __init__(
        self,
        model: IntegerBertForSequenceClassification,
        tokenizer: WordPieceTokenizer,
        config: ServingConfig = ServingConfig(),
        accel_config: Optional[AcceleratorConfig] = None,
        device: FpgaDevice = ZCU102,
        device_specs: Optional[Sequence[Tuple[AcceleratorConfig, FpgaDevice]]] = None,
    ):
        if config.max_seq_len > model.config.max_position_embeddings:
            raise ValueError(
                f"largest bucket {config.max_seq_len} exceeds the model's "
                f"max_position_embeddings {model.config.max_position_embeddings}"
            )
        self.model = model
        self.tokenizer = tokenizer
        self.config = config
        self.batcher = DynamicBatcher(config.batching_policy())
        self.router = DeviceRouter(
            model.config,
            num_devices=config.num_devices,
            accel_config=accel_config,
            device=device,
            specs=device_specs,
        )
        self.cache: LRUCache[Encoding] = LRUCache(config.cache_capacity)
        self.now_ms = 0.0
        self.results: Dict[int, RequestResult] = {}
        self._next_id = 0
        self._next_batch_id = 0
        self._first_arrival_ms: Optional[float] = None
        self._last_finish_ms = 0.0
        self._real_tokens = 0
        self._padded_tokens = 0
        # Observability seam: called as on_batch(requests, dispatch, bucket,
        # size) after each executed batch.  None (the default) keeps the hot
        # loop free of instrumentation work.
        self.on_batch = None

    # ------------------------------------------------------------------
    # request path
    # ------------------------------------------------------------------
    def submit(
        self,
        text_a: str,
        text_b: Optional[str] = None,
        arrival_ms: Optional[float] = None,
    ) -> int:
        """Enqueue one request at (simulated) ``arrival_ms``.

        Arrivals must be non-decreasing — the trace is a timeline, and the
        engine fires every batching deadline that falls before the new
        arrival *before* admitting it, exactly as a live engine would.

        Args:
            text_a: First text segment.
            text_b: Optional second segment (sentence-pair tasks).
            arrival_ms: Simulated arrival time; defaults to the current
                simulated clock.

        Returns:
            The request id (key into the results returned by :meth:`drain`).

        Raises:
            ValueError: If ``arrival_ms`` precedes the simulated clock.
        """
        arrival = self.now_ms if arrival_ms is None else float(arrival_ms)
        if arrival < self.now_ms:
            raise ValueError(
                f"arrivals must be non-decreasing: got {arrival} after {self.now_ms}"
            )
        for batch in self.batcher.due_batches(arrival):
            self._execute(batch)
        self.now_ms = arrival
        if self._first_arrival_ms is None:
            self._first_arrival_ms = arrival

        encoding, cache_hit = self._encode(text_a, text_b)
        request = Request(
            request_id=self._next_id,
            text_a=text_a,
            text_b=text_b,
            arrival_ms=arrival,
            encoding=encoding,
            cache_hit=cache_hit,
        )
        self._next_id += 1
        full = self.batcher.add(
            PendingRequest(payload=request, length=encoding.length, enqueue_ms=arrival),
            now_ms=arrival,
        )
        if full is not None:
            self._execute(full)
        return request.request_id

    def advance(self, now_ms: float) -> None:
        """Advance the simulated clock, firing every due batching deadline.

        The cluster-layer hook: a fleet drives many engines off one shared
        clock, and an idle replica must still flush a partially full batch
        whose deadline passed even if it never sees another ``submit``.
        Advancing backwards is a no-op (the clock is monotonic).

        Args:
            now_ms: Target simulated time.
        """
        for batch in self.batcher.due_batches(now_ms):
            self._execute(batch)
        if now_ms > self.now_ms:
            self.now_ms = now_ms

    def cancel_pending(self, request_id: int) -> bool:
        """Cancel one queued-but-unexecuted request (the hedge seam).

        When a hedged request's other copy dispatches first, the fleet
        cancels this engine's still-queued copy so it never executes.
        Already-executed requests cannot be cancelled (their batch ran).

        Args:
            request_id: Id returned by :meth:`submit`.

        Returns:
            True iff a queued request was removed.
        """
        return self.batcher.cancel(request_id) is not None

    def evict_pending(self) -> List[Request]:
        """Pull every queued-but-unexecuted request out of the batcher.

        The failover hook: when this engine's replica fails or drains for
        scale-down, its queued requests migrate to another replica instead
        of executing here.  Results for already-executed batches are kept —
        only unflushed queue contents move.

        Returns:
            The evicted :class:`Request` objects, oldest first.
        """
        return [pending.payload for pending in self.batcher.evict_all()]

    def drain(self) -> List[RequestResult]:
        """Complete all pending work (deadlines fire in order).

        Returns:
            Every completed :class:`RequestResult` so far, ordered by
            request id.
        """
        while self.batcher.pending:
            deadline = self.batcher.next_deadline()
            self.now_ms = max(self.now_ms, deadline)
            for batch in self.batcher.due_batches(self.now_ms):
                self._execute(batch)
        return [self.results[rid] for rid in sorted(self.results)]

    def run_trace(self, trace: Sequence[TraceRequest]) -> List[RequestResult]:
        """Submit a whole trace (sorted by arrival) and drain.

        Args:
            trace: Offline request trace; submitted in arrival order.

        Returns:
            Every completed :class:`RequestResult`, ordered by request id.
        """
        for item in sorted(trace, key=lambda t: t.arrival_ms):
            self.submit(item.text_a, item.text_b, arrival_ms=item.arrival_ms)
        return self.drain()

    # ------------------------------------------------------------------
    # metrics
    # ------------------------------------------------------------------
    def stats(self) -> ServingStats:
        """Aggregate statistics over all completed requests.

        Returns:
            The run's :class:`~repro.serve.metrics.ServingStats`.

        Raises:
            ValueError: If no request has completed yet.
        """
        completed = [self.results[rid] for rid in sorted(self.results)]
        if not completed:
            raise ValueError("no completed requests; submit + drain first")
        start = self._first_arrival_ms or 0.0
        return build_stats(
            latencies_ms=[r.latency_ms for r in completed],
            queue_ms=[r.queue_ms for r in completed],
            num_batches=self._next_batch_id,
            makespan_ms=self._last_finish_ms - start,
            cache_hit_rate=self.cache.hit_rate,
            real_tokens=self._real_tokens,
            padded_tokens=self._padded_tokens,
            slo_met=sum(r.slo_met for r in completed),
            device_busy_ms=self.router.busy_ms_by_device(),
        )

    # ------------------------------------------------------------------
    # internals
    # ------------------------------------------------------------------
    def _encode(self, text_a: str, text_b: Optional[str]) -> Tuple[Encoding, bool]:
        key = (text_a, text_b)
        cached = self.cache.get(key)
        if cached is not None:
            return cached, True
        ids, mask, segments = self.tokenizer.encode(
            text_a, text_b, max_length=self.config.max_seq_len
        )
        encoding = Encoding(
            input_ids=ids,
            attention_mask=mask,
            token_type_ids=segments,
            length=int(mask.sum()),
        )
        self.cache.put(key, encoding)
        return encoding, False

    def _execute(self, batch: Batch) -> None:
        """Run one flushed batch: model forward + simulated device timing.

        Requests that hit the tokenization cache share one
        :class:`Encoding` object, so a batch of popular texts contains
        duplicate rows.  The integer encoder is row-independent (exact
        arithmetic, batch-invariant), so each distinct encoding runs once
        and its logits fan back out to every duplicate — bit-identical to
        running the full batch, at a fraction of the compute.  Simulated
        device timing still models the full flushed batch (the padded
        shape the accelerator would execute), so dedup never changes the
        latency accounting, only host compute.

        In analytic mode the model forward is skipped entirely: every
        number below except the logits/prediction comes from the batch
        shape and the router's memoized schedule, so the timing produced
        here is identical in both modes.
        """
        bucket = batch.bucket
        requests: List[Request] = [p.payload for p in batch.requests]
        if self.config.analytic:
            logits = None
        else:
            row_of: Dict[int, int] = {}
            distinct: List[Request] = []
            rows = []
            for request in requests:
                row = row_of.get(id(request.encoding))
                if row is None:
                    row = row_of[id(request.encoding)] = len(distinct)
                    distinct.append(request)
                rows.append(row)
            input_ids = np.stack([r.encoding.input_ids[:bucket] for r in distinct])
            mask = np.stack([r.encoding.attention_mask[:bucket] for r in distinct])
            segments = np.stack([r.encoding.token_type_ids[:bucket] for r in distinct])

            # Batched integer encoder (exact arithmetic, batch-invariant) then
            # the float host head per row — see the module docstring's contract.
            codes = self.model.encode(input_ids, mask, segments)
            logits = self.model.classify_rows(codes)[rows]

        dispatch = self.router.dispatch(bucket, batch.size, ready_ms=batch.flush_ms)
        batch_id = self._next_batch_id
        self._next_batch_id += 1
        self._real_tokens += batch.real_tokens
        self._padded_tokens += batch.padded_tokens
        if dispatch.finish_ms > self._last_finish_ms:
            self._last_finish_ms = dispatch.finish_ms

        slo_ms = self.config.slo_ms
        results = self.results
        for i, request in enumerate(requests):
            latency = dispatch.finish_ms - request.arrival_ms
            results[request.request_id] = RequestResult(
                request_id=request.request_id,
                logits=_ANALYTIC_LOGITS if logits is None else logits[i],
                prediction=-1 if logits is None else int(logits[i].argmax()),
                arrival_ms=request.arrival_ms,
                start_ms=dispatch.start_ms,
                finish_ms=dispatch.finish_ms,
                queue_ms=dispatch.start_ms - request.arrival_ms,
                service_ms=dispatch.service_ms,
                latency_ms=latency,
                device_id=dispatch.device_id,
                batch_id=batch_id,
                batch_size=batch.size,
                bucket=bucket,
                length=request.encoding.length,
                cache_hit=request.cache_hit,
                slo_met=slo_ms is None or latency <= slo_ms,
            )
        if self.on_batch is not None:
            self.on_batch(requests, dispatch, bucket, batch.size)


def generate_trace(
    texts: Sequence[Tuple[str, Optional[str]]],
    num_requests: int,
    mean_interarrival_ms: float = 2.0,
    seed: int = 0,
) -> List[TraceRequest]:
    """Sample a Poisson-arrival request trace from a text pool.

    Texts are drawn with replacement, so popular inputs repeat — the
    repetition the LRU tokenization cache exists to exploit.  Fully
    deterministic given ``seed``.

    Args:
        texts: Pool of ``(text_a, text_b)`` pairs to draw from.
        num_requests: Trace length (>= 1).
        mean_interarrival_ms: Mean of the exponential inter-arrival gap.
        seed: RNG seed; equal seeds produce identical traces.

    Returns:
        Trace requests in arrival order.
    """
    if num_requests < 1:
        raise ValueError(f"num_requests must be >= 1, got {num_requests}")
    if not texts:
        raise ValueError("text pool is empty")
    rng = np.random.default_rng(seed)
    arrival = 0.0
    trace: List[TraceRequest] = []
    for _ in range(num_requests):
        arrival += float(rng.exponential(mean_interarrival_ms))
        text_a, text_b = texts[int(rng.integers(len(texts)))]
        trace.append(TraceRequest(text_a=text_a, text_b=text_b, arrival_ms=arrival))
    return trace
