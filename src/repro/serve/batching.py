"""Dynamic batching with sequence-length bucketing.

The accelerator's latency scales with the *padded* sequence length (every
padded position streams through the PE array like a real token), so naive
"pad everything to max_seq_len" batching wastes cycles proportional to the
padding.  The batcher therefore keeps one queue per length bucket and only
groups requests that pad to the same bucket — short requests never wait
behind (or pad up to) a long outlier.

Flush policy, the standard dynamic-batching contract:

- **size**: a bucket queue reaching ``max_batch_size`` flushes immediately;
- **deadline**: a queue whose *oldest* request has waited ``max_wait_ms``
  flushes partially full (bounding queueing delay under light traffic).

The batcher is purely a data structure — it never looks at a wall clock.
The engine feeds it simulated timestamps, which keeps every run
deterministic and unit-testable.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple


@dataclass(frozen=True)
class BatchingPolicy:
    """Knobs of the dynamic batcher."""

    max_batch_size: int = 8
    max_wait_ms: float = 10.0
    buckets: Tuple[int, ...] = (16, 32, 48, 64, 96, 128)

    def __post_init__(self):
        if self.max_batch_size < 1:
            raise ValueError(f"max_batch_size must be >= 1, got {self.max_batch_size}")
        if self.max_wait_ms < 0:
            raise ValueError(f"max_wait_ms must be >= 0, got {self.max_wait_ms}")
        if not self.buckets:
            raise ValueError("at least one length bucket is required")
        if tuple(sorted(self.buckets)) != self.buckets or len(set(self.buckets)) != len(
            self.buckets
        ):
            raise ValueError(f"buckets must be strictly increasing, got {self.buckets}")
        if self.buckets[0] < 1:
            raise ValueError(f"buckets must be positive, got {self.buckets}")

    @property
    def max_seq_len(self) -> int:
        return self.buckets[-1]

    def bucket_for(self, length: int) -> int:
        """Smallest bucket holding ``length`` tokens.

        Lengths beyond the largest bucket are the caller's error — the
        engine truncates encodings to ``max_seq_len`` before batching.

        Args:
            length: True (unpadded) token count, >= 1.

        Returns:
            The bucket's padded sequence length.

        Raises:
            ValueError: If ``length`` is < 1 or exceeds the largest bucket.
        """
        if length < 1:
            raise ValueError(f"sequence length must be >= 1, got {length}")
        for bucket in self.buckets:
            if length <= bucket:
                return bucket
        raise ValueError(
            f"length {length} exceeds the largest bucket {self.buckets[-1]}"
        )

    def bucket_indices(self, lengths) -> "np.ndarray":
        """Vectorized :meth:`bucket_for`, returning bucket *indices*.

        The columnar fleet engine's hook: maps a whole column of true
        token counts to positions in ``buckets`` in one searchsorted
        (``buckets[i]`` is then the padded length).  Agrees elementwise
        with ``bucket_for``: smallest bucket with ``length <= bucket``.

        Args:
            lengths: Integer array of true token counts.

        Returns:
            ``int64`` array of indices into :attr:`buckets`.

        Raises:
            ValueError: If any length is < 1 or exceeds the largest bucket.
        """
        import numpy as np

        lengths = np.asarray(lengths)
        if lengths.size and int(lengths.min()) < 1:
            raise ValueError(
                f"sequence length must be >= 1, got {int(lengths.min())}"
            )
        if lengths.size and int(lengths.max()) > self.buckets[-1]:
            raise ValueError(
                f"length {int(lengths.max())} exceeds the largest bucket "
                f"{self.buckets[-1]}"
            )
        return np.searchsorted(
            np.asarray(self.buckets, dtype=np.int64), lengths, side="left"
        )


@dataclass
class PendingRequest:
    """One queued request: the engine's payload plus batching metadata."""

    payload: object       # opaque to the batcher (the engine's Request)
    length: int           # true (unpadded) token count
    enqueue_ms: float


@dataclass
class Batch:
    """A flushed group of same-bucket requests, ready for execution."""

    bucket: int
    requests: List[PendingRequest]
    flush_ms: float       # simulated time the batch left the queue

    @property
    def size(self) -> int:
        return len(self.requests)

    @property
    def real_tokens(self) -> int:
        return sum(r.length for r in self.requests)

    @property
    def padded_tokens(self) -> int:
        return self.bucket * self.size


class DynamicBatcher:
    """Per-bucket FIFO queues with size- and deadline-triggered flushes."""

    def __init__(self, policy: BatchingPolicy):
        self.policy = policy
        self._queues: Dict[int, List[PendingRequest]] = {}
        self._pending = 0  # maintained incrementally; hot paths poll it
        # Earliest pending deadline, maintained across add/flush/evict so
        # the (clock-advance x replicas)-frequency due_batches probe is one
        # float compare instead of a scan over every bucket queue.
        # INVARIANT: always exactly min over queue heads (never stale) —
        # Fleet.advance reads this field directly as its "anything due on
        # this replica?" probe, so lazy/approximate maintenance would break
        # the cluster event loop, not just this class.
        self._next_deadline: Optional[float] = None

    @property
    def pending(self) -> int:
        return self._pending

    def _recompute_next_deadline(self) -> None:
        wait = self.policy.max_wait_ms
        deadlines = [
            queue[0].enqueue_ms + wait for queue in self._queues.values() if queue
        ]
        self._next_deadline = min(deadlines) if deadlines else None

    def queued_by_bucket(self) -> Dict[int, int]:
        """Non-empty queue depths keyed by bucket, as a fresh dict.

        Introspection/reporting helper.  The fleet's per-arrival admission
        projection does *not* call this (building a dict per replica per
        arrival is measurable at millions of requests) — it iterates
        ``_queues`` in place; see ``Fleet.projected_latency_ms``.
        """
        return {bucket: len(q) for bucket, q in self._queues.items() if q}

    def add(self, pending: PendingRequest, now_ms: float) -> Optional[Batch]:
        """Enqueue one request.

        Args:
            pending: The request plus its batching metadata.
            now_ms: Current simulated time (the flush time if this add
                fills the bucket).

        Returns:
            A full :class:`Batch` iff the request's bucket reached
            ``max_batch_size``, else ``None``.
        """
        bucket = self.policy.bucket_for(pending.length)
        queue = self._queues.setdefault(bucket, [])
        queue.append(pending)
        self._pending += 1
        if len(queue) == 1:
            deadline = pending.enqueue_ms + self.policy.max_wait_ms
            if self._next_deadline is None or deadline < self._next_deadline:
                self._next_deadline = deadline
        if len(queue) >= self.policy.max_batch_size:
            return self._flush_bucket(bucket, now_ms)
        return None

    def due_batches(self, now_ms: float) -> List[Batch]:
        """Flush every bucket whose oldest request's deadline has passed.

        Each flushed batch carries the *deadline* as its flush time (not
        ``now_ms``): under the simulated clock the deadline is the instant
        the flush would actually have fired.  Batches come out in deadline
        order so downstream dispatch sees a causally ordered stream.

        Args:
            now_ms: Current simulated time.

        Returns:
            Flushed batches in deadline order (possibly empty).
        """
        # Fast path: the maintained earliest deadline makes the common
        # "nothing due yet" probe a single compare (this method runs once
        # per replica per clock advance in a fleet run).
        if self._next_deadline is None or now_ms < self._next_deadline:
            return []
        due: List[Tuple[float, int]] = []
        for bucket, queue in self._queues.items():
            if not queue:
                continue
            deadline = queue[0].enqueue_ms + self.policy.max_wait_ms
            if deadline <= now_ms:
                due.append((deadline, bucket))
        due.sort()
        return [self._flush_bucket(bucket, deadline) for deadline, bucket in due]

    def next_deadline(self) -> Optional[float]:
        """Earliest pending deadline, or ``None`` when idle."""
        return self._next_deadline

    def cancel(self, request_id: int) -> Optional[PendingRequest]:
        """Remove one queued request by its engine request id.

        The hedge primitive: when one copy of a hedged request dispatches,
        the still-queued twin is cancelled *before* it can flush.  The
        maintained earliest-deadline invariant is preserved — removing a
        queue's head (or emptying a queue) recomputes it.

        Args:
            request_id: The engine-local id carried by the queued payload.

        Returns:
            The removed :class:`PendingRequest`, or ``None`` if no queued
            request carries that id (it already flushed).
        """
        for queue in self._queues.values():
            for i, pending in enumerate(queue):
                if pending.payload.request_id == request_id:
                    del queue[i]
                    self._pending -= 1
                    if i == 0:
                        self._recompute_next_deadline()
                    return pending
        return None

    def evict_all(self) -> List[PendingRequest]:
        """Remove every queued request *without* executing anything.

        The failover primitive: when a replica fails (or drains for
        scale-down), its queued-but-unflushed requests migrate to another
        replica instead of flushing here.  Requests come back in enqueue
        order across buckets so the caller can resubmit them in the same
        causal order they arrived.

        Returns:
            Every pending request, oldest first; the queues are left empty.
        """
        evicted: List[PendingRequest] = []
        for queue in self._queues.values():
            evicted.extend(queue)
            queue.clear()
        evicted.sort(key=lambda p: p.enqueue_ms)
        self._pending = 0
        self._next_deadline = None
        return evicted

    def flush_all(self, now_ms: float) -> List[Batch]:
        """Drain every queue (end of trace), in deadline order."""
        order = sorted(
            (queue[0].enqueue_ms, bucket)
            for bucket, queue in self._queues.items()
            if queue
        )
        batches = []
        for _, bucket in order:
            while self._queues[bucket]:
                batches.append(self._flush_bucket(bucket, now_ms))
        return batches

    def _flush_bucket(self, bucket: int, flush_ms: float) -> Batch:
        queue = self._queues[bucket]
        take = min(len(queue), self.policy.max_batch_size)
        requests, self._queues[bucket] = queue[:take], queue[take:]
        self._pending -= take
        self._recompute_next_deadline()
        return Batch(bucket=bucket, requests=requests, flush_ms=flush_ms)
