"""Serving statistics: latency percentiles, throughput, efficiency ratios.

All times are simulated milliseconds from the engine's deterministic clock,
so every number here is reproducible bit-for-bit across runs — the serving
analogue of the simulator's cycle counts.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Sequence


def percentile(values: Sequence[float], q: float) -> float:
    """Linear-interpolation percentile of ``values``.

    Implemented here (rather than ``np.percentile``) so the metric is
    dependency-light and its exact semantics are pinned for the tests.

    Args:
        values: Non-empty sequence of samples (any order).
        q: Percentile rank in [0, 100].

    Returns:
        The linearly interpolated percentile value.

    Raises:
        ValueError: If ``q`` is out of range or ``values`` is empty.
    """
    # Same check order as percentile_sorted — range before emptiness — so
    # both functions raise the same error on the same bad input.
    if not 0.0 <= q <= 100.0:
        raise ValueError(f"percentile must be in [0, 100], got {q}")
    # len(), not truthiness: a numpy array of more than one element raises
    # "truth value is ambiguous" under `if not values`, and degenerate
    # shards hand this exact shape to the merge path.
    if len(values) == 0:
        raise ValueError("percentile of empty sequence")
    return percentile_sorted(sorted(values), q)


def percentile_sorted(ordered: Sequence[float], q: float) -> float:
    """:func:`percentile` of an **already sorted** sequence (no re-sort).

    The aggregation hot path: a stats block reads several percentiles of
    one latency list, and sorting a million-request trace once instead of
    once per percentile is the difference the fleet bench measures.  Same
    interpolation, bit-identical results.

    Args:
        ordered: Non-empty sequence of samples, sorted ascending.
        q: Percentile rank in [0, 100].

    Returns:
        The linearly interpolated percentile value.

    Raises:
        ValueError: If ``q`` is out of range or ``ordered`` is empty.
    """
    if not 0.0 <= q <= 100.0:
        raise ValueError(f"percentile must be in [0, 100], got {q}")
    if len(ordered) == 0:
        raise ValueError("percentile of empty sequence")
    if len(ordered) == 1:
        return float(ordered[0])
    rank = (q / 100.0) * (len(ordered) - 1)
    lower = int(rank)
    upper = min(lower + 1, len(ordered) - 1)
    frac = rank - lower
    return float(ordered[lower] * (1.0 - frac) + ordered[upper] * frac)


@dataclass
class ServingStats:
    """Aggregate view of one serving run (the engine's ``stats()`` output)."""

    num_requests: int
    num_batches: int
    makespan_ms: float          # first arrival -> last batch completion
    p50_latency_ms: float
    p95_latency_ms: float
    p99_latency_ms: float
    mean_latency_ms: float
    max_latency_ms: float
    mean_queue_ms: float
    throughput_rps: float       # requests per simulated second
    cache_hit_rate: float
    padding_efficiency: float   # real tokens / padded tokens executed
    mean_batch_size: float
    slo_attainment: float       # fraction of requests meeting the SLO (1.0 if no SLO)
    device_busy_ms: Dict[int, float] = field(default_factory=dict)

    @classmethod
    def empty(cls) -> "ServingStats":
        """The well-defined zero-requests stats object.

        A degenerate trace — everything shed, or nothing submitted — must
        still summarize cleanly: every count is 0, every latency/ratio is
        0.0, and ``slo_attainment`` is 1.0 (no request missed its SLO).
        """
        return cls(
            num_requests=0,
            num_batches=0,
            makespan_ms=0.0,
            p50_latency_ms=0.0,
            p95_latency_ms=0.0,
            p99_latency_ms=0.0,
            mean_latency_ms=0.0,
            max_latency_ms=0.0,
            mean_queue_ms=0.0,
            throughput_rps=0.0,
            cache_hit_rate=0.0,
            padding_efficiency=1.0,
            mean_batch_size=0.0,
            slo_attainment=1.0,
            device_busy_ms={},
        )

    def device_utilization(self) -> Dict[int, float]:
        """Busy fraction of the makespan, per device."""
        if self.makespan_ms <= 0:
            return {device: 0.0 for device in self.device_busy_ms}
        return {
            device: busy / self.makespan_ms
            for device, busy in self.device_busy_ms.items()
        }

    def render(self) -> str:
        """Human-readable multi-line summary (CLI output)."""
        lines = [
            f"requests:           {self.num_requests}",
            f"batches:            {self.num_batches}  (mean size {self.mean_batch_size:.2f})",
            f"makespan:           {self.makespan_ms:.2f} ms",
            f"throughput:         {self.throughput_rps:.2f} req/s",
            f"latency p50/p95/p99: {self.p50_latency_ms:.2f} / "
            f"{self.p95_latency_ms:.2f} / {self.p99_latency_ms:.2f} ms",
            f"latency mean/max:   {self.mean_latency_ms:.2f} / {self.max_latency_ms:.2f} ms",
            f"mean queue wait:    {self.mean_queue_ms:.2f} ms",
            f"cache hit rate:     {self.cache_hit_rate * 100:.1f}%",
            f"padding efficiency: {self.padding_efficiency * 100:.1f}%",
            f"SLO attainment:     {self.slo_attainment * 100:.1f}%",
        ]
        for device, util in sorted(self.device_utilization().items()):
            lines.append(f"device {device} utilization: {util * 100:.1f}%")
        return "\n".join(lines)


def build_stats(
    latencies_ms: List[float],
    queue_ms: List[float],
    num_batches: int,
    makespan_ms: float,
    cache_hit_rate: float,
    real_tokens: int,
    padded_tokens: int,
    slo_met: int,
    device_busy_ms: Dict[int, float],
) -> ServingStats:
    """Assemble :class:`ServingStats` from the engine's raw tallies.

    Args:
        latencies_ms: Per-request end-to-end latency (arrival -> finish).
        queue_ms: Per-request queueing delay (arrival -> execution start).
        num_batches: Number of executed batches.
        makespan_ms: First arrival -> last batch completion.
        cache_hit_rate: Tokenization-cache hit fraction.
        real_tokens: Total true tokens executed.
        padded_tokens: Total padded tokens executed.
        slo_met: Count of requests that met the SLO.
        device_busy_ms: Busy milliseconds per device id.

    Returns:
        The aggregated :class:`ServingStats`; when no request completed
        (a fully shed trace is a legitimate outcome at the fleet layer),
        the well-defined :meth:`ServingStats.empty` object.
    """
    n = len(latencies_ms)
    if n == 0:
        return ServingStats.empty()
    ordered = sorted(latencies_ms)  # one sort feeds every percentile + max
    return ServingStats(
        num_requests=n,
        num_batches=num_batches,
        makespan_ms=makespan_ms,
        p50_latency_ms=percentile_sorted(ordered, 50),
        p95_latency_ms=percentile_sorted(ordered, 95),
        p99_latency_ms=percentile_sorted(ordered, 99),
        mean_latency_ms=sum(latencies_ms) / n,
        max_latency_ms=ordered[-1],
        mean_queue_ms=sum(queue_ms) / n if queue_ms else 0.0,
        throughput_rps=n / (makespan_ms / 1000.0) if makespan_ms > 0 else float("inf"),
        cache_hit_rate=cache_hit_rate,
        padding_efficiency=real_tokens / padded_tokens if padded_tokens else 1.0,
        mean_batch_size=n / num_batches if num_batches else 0.0,
        slo_attainment=slo_met / n,
        device_busy_ms=dict(device_busy_ms),
    )
