"""LRU tokenization cache for the serving engine.

Serving traffic is highly repetitive (health checks, trending queries,
retried requests), so the engine caches tokenizer output keyed on the raw
input text.  A hit skips the wordpiece pass entirely and — because the
cached entry stores the *encoded* arrays — the batch assembler can slice
the padded arrays straight into a bucket without re-encoding.

The cache is a plain bounded LRU: ``get`` refreshes recency, ``put``
evicts the least-recently-used entry once ``capacity`` is exceeded.
Hit/miss/eviction counters feed :class:`repro.serve.metrics.ServingStats`.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Generic, Hashable, Optional, TypeVar

V = TypeVar("V")

_MISSING = object()


class LRUCache(Generic[V]):
    """Bounded least-recently-used mapping with hit/miss accounting."""

    def __init__(self, capacity: int):
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        self.capacity = capacity
        self._entries: "OrderedDict[Hashable, V]" = OrderedDict()
        self.hits = 0
        self.misses = 0
        self.evictions = 0

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, key: Hashable) -> bool:
        """Membership test without touching recency or counters."""
        return key in self._entries

    def get(self, key: Hashable) -> Optional[V]:
        """Look one key up, refreshing its recency.

        Args:
            key: Cache key.

        Returns:
            The cached value, or ``None`` on a miss (counted).
        """
        value = self._entries.get(key, _MISSING)
        if value is _MISSING:
            self.misses += 1
            return None
        self._entries.move_to_end(key)
        self.hits += 1
        return value

    def put(self, key: Hashable, value: V) -> None:
        """Insert or refresh one entry.

        Args:
            key: Cache key.
            value: Value to store; evicts the least-recently-used entry
                when capacity is exceeded.
        """
        if key in self._entries:
            self._entries.move_to_end(key)
        self._entries[key] = value
        if len(self._entries) > self.capacity:
            self._entries.popitem(last=False)
            self.evictions += 1

    @property
    def hit_rate(self) -> float:
        """Fraction of lookups served from cache (0.0 when never queried)."""
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    def clear(self) -> None:
        self._entries.clear()
