"""Runtime-compiled C kernel for the columnar fleet engine's arrival sweep.

The columnar engine's hot loop — project, admit/shed, enqueue, flush —
is a *sequential* decision process (each admission depends on the state
the previous one left), so it cannot be vectorized as numpy whole-array
ops without changing semantics.  It can, however, be compiled: this
module carries a small C translation of the pure-Python sweep in
:mod:`repro.fleet.columnar`, builds it once per process with the system
C compiler, and loads it through :mod:`ctypes`.

Bit-exactness contract: the C code performs the *same IEEE-754 double
operations in the same order* as the Python sweep (which in turn mirrors
the event-loop engine).  The build deliberately avoids every flag that
would let the compiler reassociate or contract floating point
(``-ffp-contract=off``, no ``-ffast-math``, no ``-march=native``), so
x86-64 SSE2 / aarch64 doubles come out bit-identical to CPython's —
a property the differential tests assert rather than assume.

When no C compiler is available (or ``REPRO_COLUMNAR_NATIVE=0`` is set)
the engine transparently falls back to the pure-Python sweep; results
are identical either way, only wall-clock changes.
"""

from __future__ import annotations

import ctypes
import os
import shutil
import subprocess
import tempfile
from typing import Optional

_SOURCE = r"""
#include <math.h>
#include <string.h>

/* Layout (L live replicas, B buckets, M max batch):
 *   price_full [L*B]        full-batch service ms per bucket
 *   ref_price  [L]          admission reference-batch price
 *   svc        [L*B*(M+1)]  service ms per (bucket, batch size); col 0 unused
 *   depth      [L*B]        queue depths (always < M between events)
 *   qidx/qenq  [L*B*M]      queued request index / enqueue time, FIFO
 *   seen       [L*B]        bucket ever used on this replica
 *   order      [L*B]        bucket slots in first-use order (order_n valid)
 *   next_dl    [L]          earliest pending deadline, INFINITY when none
 */

static void recompute_next_dl(long long r, long long B, long long M,
                              double wait_ms, const int *depth,
                              const double *qenq, const int *order,
                              const int *order_n, double *next_dl) {
    double nd = INFINITY;
    long long on = order_n[r];
    for (long long j = 0; j < on; ++j) {
        long long b = order[r * B + j];
        if (depth[r * B + b] > 0) {
            double cand = qenq[(r * B + b) * M] + wait_ms;
            if (cand < nd) nd = cand;
        }
    }
    next_dl[r] = nd;
}

static void flush_bucket(long long r, long long b, double flush_ms,
                         long long B, long long M, double wait_ms,
                         double *busy_until, double *busy_ms,
                         long long *batches, long long *served,
                         const double *svc, int *depth,
                         const long long *qidx, const double *qenq,
                         const int *order, const int *order_n,
                         double *next_dl, unsigned char *shed, double *finish,
                         long long *done_log, long long *done_n) {
    long long n = depth[r * B + b];
    double service = svc[(r * B + b) * (M + 1) + n];
    double start = flush_ms > busy_until[r] ? flush_ms : busy_until[r];
    double fin = start + service;
    busy_until[r] = fin;
    busy_ms[r] += service;
    batches[r] += 1;
    served[r] += n;
    for (long long j = 0; j < n; ++j) {
        long long idx = qidx[(r * B + b) * M + j];
        shed[idx] = 0;
        finish[idx] = fin;
        done_log[(*done_n)++] = idx;
    }
    depth[r * B + b] = 0;
    recompute_next_dl(r, B, M, wait_ms, depth, qenq, order, order_n, next_dl);
}

static void fire_dues(long long r, double now_ms,
                      long long B, long long M, double wait_ms,
                      double *busy_until, double *busy_ms,
                      long long *batches, long long *served,
                      const double *svc, int *depth,
                      const long long *qidx, const double *qenq,
                      const int *order, const int *order_n,
                      const long long *bucket_value,
                      double *next_dl, unsigned char *shed, double *finish,
                      long long *done_log, long long *done_n,
                      double *due_dl, long long *due_bv, long long *due_b) {
    /* Collect every due (deadline, bucket) pair first, then flush — a
     * flush only empties queues, so the due set is fixed up front
     * (mirrors DynamicBatcher.due_batches). */
    long long count = 0;
    long long on = order_n[r];
    for (long long j = 0; j < on; ++j) {
        long long b = order[r * B + j];
        if (depth[r * B + b] > 0) {
            double dl = qenq[(r * B + b) * M] + wait_ms;
            if (dl <= now_ms) {
                due_dl[count] = dl;
                due_bv[count] = bucket_value[b];
                due_b[count] = b;
                ++count;
            }
        }
    }
    /* Insertion sort by (deadline, bucket value) — Python's due.sort(). */
    for (long long i = 1; i < count; ++i) {
        double dl = due_dl[i];
        long long bv = due_bv[i], b = due_b[i];
        long long j = i - 1;
        while (j >= 0 && (due_dl[j] > dl || (due_dl[j] == dl && due_bv[j] > bv))) {
            due_dl[j + 1] = due_dl[j];
            due_bv[j + 1] = due_bv[j];
            due_b[j + 1] = due_b[j];
            --j;
        }
        due_dl[j + 1] = dl;
        due_bv[j + 1] = bv;
        due_b[j + 1] = b;
    }
    for (long long i = 0; i < count; ++i) {
        flush_bucket(r, due_b[i], due_dl[i], B, M, wait_ms,
                     busy_until, busy_ms, batches, served, svc, depth,
                     qidx, qenq, order, order_n, next_dl, shed, finish,
                     done_log, done_n);
    }
}

static double global_next(long long L, const double *next_dl) {
    double g = INFINITY;
    for (long long r = 0; r < L; ++r)
        if (next_dl[r] < g) g = next_dl[r];
    return g;
}

/* The admission projection: minimum over live replicas, strict < keeping
 * the lowest index on ties (Fleet.submit's plain loop).  Shared by the
 * per-arrival path and the shed-skip binary search so both evaluate the
 * byte-identical FP expression. */
static double best_projection(double t, long long L, long long B, long long M,
                              double wait_ms, const double *busy_until,
                              const double *price_full, const double *ref_price,
                              const int *depth, const int *order,
                              const int *order_n, long long *best_out) {
    long long best = 0;
    double bestp = 0.0;
    for (long long r = 0; r < L; ++r) {
        double backlog = busy_until[r] - t;
        if (backlog < 0.0) backlog = 0.0;
        double queued = 0.0;
        long long on = order_n[r];
        for (long long j = 0; j < on; ++j) {
            long long b = order[r * B + j];
            long long d = depth[r * B + b];
            if (d > 0)
                queued += (double)((d + M - 1) / M) * price_full[r * B + b];
        }
        double proj = backlog + queued + ref_price[r] + wait_ms;
        if (r == 0 || proj < bestp) {
            bestp = proj;
            best = r;
        }
    }
    *best_out = best;
    return bestp;
}

void arrival_run(long long i0, long long i1,
                 const double *arrival, const int *bucket, const double *slo,
                 long long L, long long B, long long M,
                 double wait_ms, double admit_factor, double uniform_slo,
                 double *busy_until, double *busy_ms,
                 long long *batches, long long *served,
                 const double *price_full, const double *ref_price,
                 const double *svc,
                 int *depth, long long *qidx, double *qenq,
                 unsigned char *seen, int *order, int *order_n,
                 double *next_dl, const long long *bucket_value,
                 unsigned char *shed, double *finish,
                 long long *done_log, long long *done_n,
                 double *due_dl, long long *due_bv, long long *due_b) {
    double g = global_next(L, next_dl);
    /* With a uniform per-request SLO the shed threshold is one constant
     * (the same product admit_factor * slo[i] the per-arrival check
     * computes); <= 0 disables the shed-skip fast path. */
    double uthresh = uniform_slo > 0.0 ? admit_factor * uniform_slo : -1.0;
    for (long long i = i0; i < i1; ++i) {
        double t = arrival[i];
        if (t >= g) {
            /* Fleet.advance: live replicas in id order. */
            for (long long r = 0; r < L; ++r) {
                if (next_dl[r] <= t) {
                    fire_dues(r, t, B, M, wait_ms, busy_until, busy_ms,
                              batches, served, svc, depth, qidx, qenq,
                              order, order_n, bucket_value, next_dl,
                              shed, finish, done_log, done_n,
                              due_dl, due_bv, due_b);
                }
            }
            g = global_next(L, next_dl);
        }
        long long best;
        double bestp = best_projection(t, L, B, M, wait_ms, busy_until,
                                       price_full, ref_price, depth,
                                       order, order_n, &best);
        if (bestp > admit_factor * slo[i]) {
            shed[i] = 1;
            if (uthresh > 0.0 && i + 1 < i1) {
                /* Shed-skip: replica state is frozen while requests shed,
                 * and the projection is FP-monotone non-increasing in t
                 * (IEEE subtraction/addition are monotone, min of
                 * monotone is monotone), so within the arrivals that
                 * precede the next deadline g the shed -> admit boundary
                 * is a clean threshold.  Binary-search it with the exact
                 * per-arrival predicate, then bulk-mark the sheds. */
                long long lim = i1;
                if (g < INFINITY) {
                    long long lo = i + 1, hi = i1;
                    while (lo < hi) {
                        long long mid = lo + (hi - lo) / 2;
                        if (arrival[mid] >= g) hi = mid; else lo = mid + 1;
                    }
                    lim = lo;
                }
                long long lo = i + 1, hi = lim, scratch;
                while (lo < hi) {
                    long long mid = lo + (hi - lo) / 2;
                    double p = best_projection(arrival[mid], L, B, M, wait_ms,
                                               busy_until, price_full,
                                               ref_price, depth, order,
                                               order_n, &scratch);
                    if (p > uthresh) lo = mid + 1; else hi = mid;
                }
                if (lo > i + 1) {
                    memset(shed + i + 1, 1, (size_t)(lo - (i + 1)));
                    i = lo - 1;
                }
            }
            continue;
        }
        long long r = best;
        long long b = bucket[i];
        long long d = depth[r * B + b];
        qidx[(r * B + b) * M + d] = i;
        qenq[(r * B + b) * M + d] = t;
        depth[r * B + b] = (int)(d + 1);
        if (d == 0) {
            if (!seen[r * B + b]) {
                seen[r * B + b] = 1;
                order[r * B + order_n[r]] = (int)b;
                order_n[r] += 1;
            }
            double dl = t + wait_ms;
            if (dl < next_dl[r]) next_dl[r] = dl;
            if (dl < g) g = dl;
        }
        if (d + 1 >= M) {
            flush_bucket(r, b, t, B, M, wait_ms, busy_until, busy_ms,
                         batches, served, svc, depth, qidx, qenq,
                         order, order_n, next_dl, shed, finish,
                         done_log, done_n);
            g = global_next(L, next_dl);
        }
    }
}
"""

_lib = None
_load_attempted = False


def _compiler() -> Optional[str]:
    for cand in ("cc", "gcc", "clang"):
        path = shutil.which(cand)
        if path:
            return path
    return None


def _build() -> Optional[ctypes.CDLL]:
    compiler = _compiler()
    if compiler is None:
        return None
    workdir = tempfile.mkdtemp(prefix="repro-columnar-")
    src = os.path.join(workdir, "arrival_run.c")
    lib = os.path.join(workdir, "arrival_run.so")
    with open(src, "w") as fh:
        fh.write(_SOURCE)
    cmd = [
        compiler,
        "-O3",
        "-fPIC",
        "-shared",
        # Forbid FMA contraction: a fused multiply-add rounds once where
        # Python rounds twice, which would break bit-exactness.
        "-ffp-contract=off",
        "-o",
        lib,
        src,
        "-lm",
    ]
    try:
        proc = subprocess.run(
            cmd, stdout=subprocess.PIPE, stderr=subprocess.PIPE, timeout=120
        )
    except (OSError, subprocess.SubprocessError):
        return None
    if proc.returncode != 0:
        return None
    try:
        handle = ctypes.CDLL(lib)
    except OSError:
        return None

    import numpy.ctypeslib as npc
    import numpy as np

    f8 = npc.ndpointer(np.float64, flags="C_CONTIGUOUS")
    i8 = npc.ndpointer(np.int64, flags="C_CONTIGUOUS")
    i4 = npc.ndpointer(np.int32, flags="C_CONTIGUOUS")
    u1 = npc.ndpointer(np.uint8, flags="C_CONTIGUOUS")
    ll = ctypes.c_longlong
    dd = ctypes.c_double
    handle.arrival_run.restype = None
    handle.arrival_run.argtypes = [
        ll, ll,                    # i0, i1
        f8, i4, f8,                # arrival, bucket, slo
        ll, ll, ll,                # L, B, M
        dd, dd, dd,                # wait_ms, admit_factor, uniform_slo
        f8, f8, i8, i8,            # busy_until, busy_ms, batches, served
        f8, f8, f8,                # price_full, ref_price, svc
        i4, i8, f8,                # depth, qidx, qenq
        u1, i4, i4,                # seen, order, order_n
        f8, i8,                    # next_dl, bucket_value
        u1, f8,                    # shed, finish
        i8, i8,                    # done_log, done_n (size-1 array)
        f8, i8, i8,                # due_dl, due_bv, due_b scratch
    ]
    return handle


def load() -> Optional[ctypes.CDLL]:
    """The compiled kernel, building it on first call; ``None`` if unavailable."""
    global _lib, _load_attempted
    if _load_attempted:
        return _lib
    _load_attempted = True
    if os.environ.get("REPRO_COLUMNAR_NATIVE", "1") == "0":
        _lib = None
    else:
        _lib = _build()
    return _lib


def available() -> bool:
    """Whether the native sweep can run in this process."""
    return load() is not None
