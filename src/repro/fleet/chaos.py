"""Chaos plans and resilience policies for fleet simulation.

Two halves, deliberately separate:

- **Chaos** = what breaks.  A :class:`ChaosPlan` is a seeded,
  deterministic description of injected trouble: fail-stop failures
  (optionally correlated across a named *zone* of replicas), and
  *gray* windows — intervals where a replica stays live but serves
  every batch ``slowdown`` x slower, the straggler mode that fail-stop
  detection cannot see.  Plans load from JSON (``loadtest
  --chaos-plan``) via :func:`load_chaos_plan`.

- **Resilience** = how the fleet answers.  A :class:`ResiliencePolicy`
  enables per-request timeout/retry with seeded exponential backoff +
  jitter under a retry *budget*, request hedging against the
  second-best replica with cancel-on-first-win, a per-replica
  :class:`CircuitBreaker` (closed/open/half-open over a window of
  straggle observations), and a :class:`BrownoutLadder` that loosens
  the admission bound stepwise before shedding.

Everything here is engine-neutral: the event-loop fleet
(:mod:`repro.fleet.fleet`) and the columnar engine
(:mod:`repro.fleet.columnar`) share these exact objects and the pure
:func:`backoff_delay_ms` so every chaos primitive replays
byte-identically in both.  The determinism contract: equal
``(policy, seed, request index, attempt)`` always yields the same
delay; breaker and brownout transitions depend only on the simulated
event order, which the engines already share.
"""

from __future__ import annotations

import json
import math
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

__all__ = [
    "BrownoutLadder",
    "ChaosPlan",
    "ChaosStats",
    "CircuitBreaker",
    "GrayWindow",
    "ResiliencePolicy",
    "RetryBudget",
    "ZoneOutage",
    "backoff_delay_ms",
    "chaos_plan_from_dict",
    "load_chaos_plan",
]

SHED_BREAKER = "breaker-open"   # every live replica's breaker is open
SHED_TIMEOUT = "timeout"        # projected latency beyond the request timeout


def _require_finite(name: str, value: float, minimum: Optional[float] = None) -> float:
    value = float(value)
    if not math.isfinite(value):
        raise ValueError(f"{name} must be finite, got {value}")
    if minimum is not None and value < minimum:
        raise ValueError(f"{name} must be >= {minimum}, got {value}")
    return value


# ----------------------------------------------------------------------
# chaos: what breaks
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class GrayWindow:
    """One replica's straggler interval: live, but ``slowdown`` x slower.

    Gray failure is the mode fail-stop detection cannot see — the
    replica keeps accepting and completing batches, each one stretched
    by ``slowdown``.  Admission projections deliberately stay *nominal*
    (a router cannot know a node went gray); only the circuit breaker,
    watching realized service times, reacts.
    """

    replica_id: int
    start_ms: float
    end_ms: float
    slowdown: float

    def __post_init__(self):
        if self.replica_id < 0:
            raise ValueError(f"replica_id must be >= 0, got {self.replica_id}")
        _require_finite("start_ms", self.start_ms, 0.0)
        _require_finite("end_ms", self.end_ms)
        if self.end_ms <= self.start_ms:
            raise ValueError(
                f"end_ms must come after start_ms, got [{self.start_ms}, {self.end_ms}]"
            )
        _require_finite("slowdown", self.slowdown)
        if self.slowdown <= 0.0:
            raise ValueError(f"slowdown must be > 0, got {self.slowdown}")


@dataclass(frozen=True)
class ZoneOutage:
    """A correlated fail-stop of every replica in a named zone."""

    zone: str
    at_ms: float
    recover_ms: Optional[float] = None

    def __post_init__(self):
        if not self.zone:
            raise ValueError("zone name must be non-empty")
        _require_finite("at_ms", self.at_ms, 0.0)
        if self.recover_ms is not None:
            _require_finite("recover_ms", self.recover_ms)
            if self.recover_ms <= self.at_ms:
                raise ValueError("recover_ms must come after at_ms")


@dataclass(frozen=True)
class ChaosPlan:
    """A named, deterministic bundle of injected failures.

    ``zones`` maps zone names to replica-id groups; a :class:`ZoneOutage`
    expands to one fail-stop per member, in replica-id order, so the
    correlated failure replays identically in both engines.
    """

    name: str = "chaos"
    zones: Tuple[Tuple[str, Tuple[int, ...]], ...] = ()
    failures: Tuple[object, ...] = ()        # FailureEvent (runner-owned type)
    grays: Tuple[GrayWindow, ...] = ()
    outages: Tuple[ZoneOutage, ...] = ()

    def __post_init__(self):
        zone_map = dict(self.zones)
        for outage in self.outages:
            if outage.zone not in zone_map:
                raise ValueError(
                    f"zone outage names unknown zone {outage.zone!r}; "
                    f"plan zones: {sorted(zone_map)}"
                )
        for zone, members in self.zones:
            if not members:
                raise ValueError(f"zone {zone!r} has no members")
            for rid in members:
                if rid < 0:
                    raise ValueError(f"zone {zone!r} member {rid} must be >= 0")

    def zone_map(self) -> Dict[str, Tuple[int, ...]]:
        return dict(self.zones)

    def failure_events(self) -> Tuple[object, ...]:
        """Explicit failures plus zone outages expanded member-by-member.

        Expansion order is deterministic: explicit failures first (plan
        order), then each outage's members in ascending replica id — the
        exact order both engines inject them.
        """
        from .runner import FailureEvent  # lazy: avoids an import cycle

        events = list(self.failures)
        zone_map = self.zone_map()
        for outage in self.outages:
            for rid in sorted(zone_map[outage.zone]):
                events.append(
                    FailureEvent(
                        replica_id=rid,
                        fail_ms=outage.at_ms,
                        recover_ms=outage.recover_ms,
                    )
                )
        return tuple(events)


def chaos_plan_from_dict(doc: dict) -> ChaosPlan:
    """Build a :class:`ChaosPlan` from its JSON document shape.

    The shape (see ``docs/robustness.md``)::

        {"name": "rack-trouble",
         "zones": {"rack0": [0, 1]},
         "events": [
           {"kind": "fail", "replica": 0, "at_ms": 100.0, "recover_ms": 300.0},
           {"kind": "gray", "replica": 1, "start_ms": 50.0, "end_ms": 150.0,
            "slowdown": 3.0},
           {"kind": "zone", "zone": "rack0", "at_ms": 200.0, "recover_ms": 400.0}]}

    Raises:
        ValueError: On unknown event kinds, missing fields, or any
            value the chaos dataclasses reject (negative, NaN, or
            infinite times; recover before fail; non-positive slowdown).
    """
    from .runner import FailureEvent  # lazy: avoids an import cycle

    if not isinstance(doc, dict):
        raise ValueError(f"chaos plan must be a JSON object, got {type(doc).__name__}")
    unknown = set(doc) - {"name", "zones", "events"}
    if unknown:
        raise ValueError(f"unknown chaos plan keys: {sorted(unknown)}")
    zones = tuple(
        (str(zone), tuple(int(rid) for rid in members))
        for zone, members in sorted(dict(doc.get("zones", {})).items())
    )
    failures: List[object] = []
    grays: List[GrayWindow] = []
    outages: List[ZoneOutage] = []
    for i, event in enumerate(doc.get("events", [])):
        if not isinstance(event, dict) or "kind" not in event:
            raise ValueError(f"chaos event #{i} must be an object with a 'kind'")
        kind = event["kind"]
        try:
            if kind == "fail":
                recover = event.get("recover_ms")
                failures.append(
                    FailureEvent(
                        replica_id=int(event["replica"]),
                        fail_ms=_require_finite("at_ms", event["at_ms"], 0.0),
                        recover_ms=None if recover is None
                        else _require_finite("recover_ms", recover),
                    )
                )
            elif kind == "gray":
                grays.append(
                    GrayWindow(
                        replica_id=int(event["replica"]),
                        start_ms=event["start_ms"],
                        end_ms=event["end_ms"],
                        slowdown=event["slowdown"],
                    )
                )
            elif kind == "zone":
                outages.append(
                    ZoneOutage(
                        zone=str(event["zone"]),
                        at_ms=event["at_ms"],
                        recover_ms=event.get("recover_ms"),
                    )
                )
            else:
                raise ValueError(
                    f"unknown chaos event kind {kind!r} (expected fail/gray/zone)"
                )
        except KeyError as exc:
            raise ValueError(f"chaos event #{i} ({kind}) missing field {exc}") from None
        except (TypeError, ValueError) as exc:
            raise ValueError(f"chaos event #{i} ({kind}): {exc}") from None
    return ChaosPlan(
        name=str(doc.get("name", "chaos")),
        zones=zones,
        failures=tuple(failures),
        grays=tuple(grays),
        outages=tuple(outages),
    )


def load_chaos_plan(path: str) -> ChaosPlan:
    """Load and validate a chaos plan from a JSON file."""
    with open(path, "r", encoding="utf-8") as handle:
        try:
            doc = json.load(handle)
        except json.JSONDecodeError as exc:
            raise ValueError(f"chaos plan {path}: invalid JSON ({exc})") from None
    try:
        return chaos_plan_from_dict(doc)
    except ValueError as exc:
        raise ValueError(f"chaos plan {path}: {exc}") from None


# ----------------------------------------------------------------------
# resilience: how the fleet answers
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class ResiliencePolicy:
    """Knobs of the fleet's answer to chaos.  Everything defaults off.

    With every knob at its default, :attr:`enabled` is False and both
    engines keep their untouched fast paths — the zero-cost-when-disabled
    contract the fleet bench gates.
    """

    # retry: re-attempt shed admissions after seeded backoff
    max_retries: int = 0
    backoff_base_ms: float = 5.0       # first retry delay (doubles per attempt)
    backoff_jitter: float = 0.5        # delay *= 1 + jitter * uniform[0, 1)
    retry_budget_ratio: float = 0.0    # tokens accrued per admitted original
    retry_budget_burst: float = 10.0   # token cap (and initial balance)
    # hedge: duplicate risky admissions onto the second-best replica
    hedge: bool = False
    hedge_factor: float = 0.75         # hedge when projected > factor * SLO
    # timeout: fail fast (into the retry path) instead of queueing long
    timeout_ms: Optional[float] = None
    # circuit breaker: per-replica straggle detector
    breaker: bool = False
    breaker_straggle_factor: float = 3.0   # straggle iff service > factor * nominal
    breaker_window: int = 8                # recent batches scored
    breaker_threshold: float = 0.5         # open at this straggle fraction
    breaker_min_samples: int = 4           # observations before opening
    breaker_open_ms: float = 100.0         # open hold before half-open
    breaker_probes: int = 2                # clean half-open batches to close
    # brownout: loosen the admission bound stepwise before shedding
    brownout: bool = False
    brownout_levels: Tuple[float, ...] = (1.0, 1.5, 2.0)
    brownout_dwell_ms: float = 50.0        # hysteresis before de-escalating

    def __post_init__(self):
        if self.max_retries < 0:
            raise ValueError(f"max_retries must be >= 0, got {self.max_retries}")
        _require_finite("backoff_base_ms", self.backoff_base_ms, 0.0)
        _require_finite("backoff_jitter", self.backoff_jitter, 0.0)
        _require_finite("retry_budget_ratio", self.retry_budget_ratio, 0.0)
        _require_finite("retry_budget_burst", self.retry_budget_burst, 0.0)
        _require_finite("hedge_factor", self.hedge_factor, 0.0)
        if self.timeout_ms is not None:
            timeout = _require_finite("timeout_ms", self.timeout_ms)
            if timeout <= 0.0:
                raise ValueError(f"timeout_ms must be > 0, got {timeout}")
        _require_finite("breaker_straggle_factor", self.breaker_straggle_factor)
        if self.breaker_straggle_factor <= 1.0:
            raise ValueError(
                f"breaker_straggle_factor must be > 1, got {self.breaker_straggle_factor}"
            )
        if self.breaker_window < 1:
            raise ValueError(f"breaker_window must be >= 1, got {self.breaker_window}")
        if not 0.0 < self.breaker_threshold <= 1.0:
            raise ValueError(
                f"breaker_threshold must be in (0, 1], got {self.breaker_threshold}"
            )
        if self.breaker_min_samples < 1:
            raise ValueError(
                f"breaker_min_samples must be >= 1, got {self.breaker_min_samples}"
            )
        _require_finite("breaker_open_ms", self.breaker_open_ms, 0.0)
        if self.breaker_probes < 1:
            raise ValueError(f"breaker_probes must be >= 1, got {self.breaker_probes}")
        if not self.brownout_levels:
            raise ValueError("brownout_levels must be non-empty")
        if self.brownout_levels[0] != 1.0:
            raise ValueError(
                f"brownout_levels[0] must be 1.0 (the undegraded bound), "
                f"got {self.brownout_levels[0]}"
            )
        for level in self.brownout_levels:
            _require_finite("brownout level", level)
            if level <= 0.0:
                raise ValueError(f"brownout levels must be > 0, got {level}")
        if tuple(sorted(self.brownout_levels)) != self.brownout_levels:
            raise ValueError(
                f"brownout_levels must be non-decreasing, got {self.brownout_levels}"
            )
        _require_finite("brownout_dwell_ms", self.brownout_dwell_ms, 0.0)

    @property
    def enabled(self) -> bool:
        """True iff any mechanism is active (the fast-path gate)."""
        return bool(
            self.max_retries > 0
            or self.hedge
            or self.timeout_ms is not None
            or self.breaker
            or self.brownout
        )


_MASK64 = (1 << 64) - 1


def _splitmix64(x: int) -> int:
    x = (x + 0x9E3779B97F4A7C15) & _MASK64
    x = ((x ^ (x >> 30)) * 0xBF58476D1CE4E5B9) & _MASK64
    x = ((x ^ (x >> 27)) * 0x94D049BB133111EB) & _MASK64
    return x ^ (x >> 31)


def backoff_delay_ms(
    policy: ResiliencePolicy, seed: int, index: int, attempt: int
) -> float:
    """The deterministic retry delay for one request's ``attempt``-th retry.

    Exponential base (doubling per attempt) with multiplicative jitter
    from a splitmix64 hash of ``(seed, index, attempt)`` — a pure
    function of its arguments, independent of any engine's RNG state,
    so the event-loop and columnar engines compute the identical float
    from identical inputs.

    Args:
        policy: The resilience policy (base delay + jitter fraction).
        seed: The run seed.
        index: The request's fleet record index.
        attempt: Retry number, 1-based.

    Returns:
        Delay in simulated milliseconds (>= 0).
    """
    base = policy.backoff_base_ms * float(2 ** (attempt - 1))
    if policy.backoff_jitter == 0.0:
        return base
    mixed = _splitmix64(_splitmix64(_splitmix64(seed & _MASK64) ^ index) ^ attempt)
    uniform = mixed / 18446744073709551616.0  # 2**64 -> [0, 1)
    return base * (1.0 + policy.backoff_jitter * uniform)


@dataclass
class RetryBudget:
    """A token bucket bounding retry amplification.

    One token buys one retry; ``ratio`` tokens accrue per admitted
    *original* request (capped at ``burst``).  ``ratio == 0`` means
    unlimited — the budget never blocks.  Both engines call
    :meth:`accrue`/:meth:`spend` at the same points in the same order,
    so the (float) balance stays byte-identical.
    """

    ratio: float = 0.0
    burst: float = 10.0
    tokens: float = 10.0

    @classmethod
    def from_policy(cls, policy: ResiliencePolicy) -> "RetryBudget":
        return cls(
            ratio=policy.retry_budget_ratio,
            burst=policy.retry_budget_burst,
            tokens=policy.retry_budget_burst,
        )

    def accrue(self) -> None:
        if self.ratio > 0.0:
            tokens = self.tokens + self.ratio
            self.tokens = self.burst if tokens > self.burst else tokens

    def spend(self) -> bool:
        """Take one token; False iff the budget is exhausted."""
        if self.ratio <= 0.0:
            return True
        if self.tokens < 1.0:
            return False
        self.tokens = self.tokens - 1.0
        return True


BREAKER_CLOSED = "closed"
BREAKER_OPEN = "open"
BREAKER_HALF_OPEN = "half-open"


@dataclass
class CircuitBreaker:
    """Per-replica straggle detector: closed -> open -> half-open -> closed.

    Observes every dispatched batch (realized service vs the nominal
    simulator price).  When the straggle fraction over the last
    ``window`` batches reaches ``threshold`` (with at least
    ``min_samples`` seen), the breaker *opens*: admission skips the
    replica for ``open_ms``, after which the first admission check
    moves it to *half-open* and the next ``probes`` batches decide —
    any straggle reopens, all clean closes.

    Plain picklable state shared verbatim by both engines (it rides the
    columnar engine's shard-state pickle), so breaker behavior cannot
    drift between them.  All comparisons are on floats both engines
    already share byte-identically.
    """

    straggle_factor: float = 3.0
    window: int = 8
    threshold: float = 0.5
    min_samples: int = 4
    open_ms: float = 100.0
    probes: int = 2
    state: str = BREAKER_CLOSED
    open_until_ms: float = 0.0
    recent: List[bool] = field(default_factory=list)
    probes_left: int = 0
    opens: int = 0
    closes: int = 0

    @classmethod
    def from_policy(cls, policy: ResiliencePolicy) -> "CircuitBreaker":
        return cls(
            straggle_factor=policy.breaker_straggle_factor,
            window=policy.breaker_window,
            threshold=policy.breaker_threshold,
            min_samples=policy.breaker_min_samples,
            open_ms=policy.breaker_open_ms,
            probes=policy.breaker_probes,
        )

    def allows(self, now_ms: float) -> bool:
        """Admission check; lazily moves open -> half-open past the hold."""
        if self.state == BREAKER_OPEN:
            if now_ms < self.open_until_ms:
                return False
            self.state = BREAKER_HALF_OPEN
            self.probes_left = self.probes
            self.recent = []
        return True

    def observe(self, finish_ms: float, straggled: bool) -> Optional[str]:
        """Score one dispatched batch; returns a new state on transition.

        Args:
            finish_ms: The batch's finish time (anchors the open hold).
            straggled: True iff realized service exceeded
                ``straggle_factor`` x the nominal price.

        Returns:
            ``"open"`` / ``"closed"`` on a transition, else ``None``.
        """
        if self.state == BREAKER_HALF_OPEN:
            if straggled:
                self.state = BREAKER_OPEN
                self.open_until_ms = finish_ms + self.open_ms
                self.opens += 1
                return BREAKER_OPEN
            self.probes_left -= 1
            if self.probes_left <= 0:
                self.state = BREAKER_CLOSED
                self.recent = []
                self.closes += 1
                return BREAKER_CLOSED
            return None
        if self.state == BREAKER_OPEN:
            # In-flight batches may still land while open; they carry no
            # new information (the hold timer owns the transition).
            return None
        self.recent.append(straggled)
        if len(self.recent) > self.window:
            del self.recent[0]
        if len(self.recent) >= self.min_samples:
            straggles = sum(self.recent)
            if straggles >= self.threshold * len(self.recent):
                self.state = BREAKER_OPEN
                self.open_until_ms = finish_ms + self.open_ms
                self.opens += 1
                return BREAKER_OPEN
        return None


@dataclass
class BrownoutLadder:
    """Stepwise admission degradation: loosen the bound before shedding.

    ``levels`` multiply the admission bound (``admit_slo_factor x SLO``);
    level 0 is 1.0 — byte-identical to no brownout, because multiplying
    by 1.0 is exact in IEEE-754.  Escalation is immediate (an admission
    that would shed at the current level climbs until it fits or tops
    out); de-escalation waits out ``dwell_ms`` of hysteresis and only
    steps down when the current projection fits the lower bound.  Shed
    happens only at the top level.
    """

    levels: Tuple[float, ...] = (1.0, 1.5, 2.0)
    dwell_ms: float = 50.0
    level: int = 0
    last_change_ms: float = 0.0
    escalations: int = 0
    deescalations: int = 0

    @classmethod
    def from_policy(cls, policy: ResiliencePolicy) -> "BrownoutLadder":
        return cls(levels=policy.brownout_levels, dwell_ms=policy.brownout_dwell_ms)


@dataclass
class ChaosStats:
    """Resilience-mechanism counters for one run (all integers).

    Only attached to :class:`~repro.fleet.metrics.FleetStats` when a
    :class:`ResiliencePolicy` or :class:`ChaosPlan` was active — reports
    of plain runs keep their exact pre-chaos bytes.  Both engines count
    the same deterministic events in the same order, so these integers
    are identical across them by construction (the differential suite
    pins it).
    """

    retries: int = 0                 # retry attempts scheduled
    retry_budget_exhausted: int = 0  # retries denied by the token budget
    timeouts: int = 0                # fail-fast rejections (incl. retried ones)
    hedges: int = 0                  # admissions duplicated onto a second replica
    hedge_wins: int = 0              # hedged requests won by the secondary
    breaker_opens: int = 0           # circuit-breaker open transitions
    breaker_closes: int = 0          # circuit-breaker close transitions
    brownout_escalations: int = 0    # brownout ladder steps up
    brownout_deescalations: int = 0  # brownout ladder steps down

    def render(self) -> List[str]:
        return [
            f"retries:        {self.retries} scheduled, "
            f"{self.retry_budget_exhausted} budget-denied, "
            f"{self.timeouts} timeouts",
            f"hedging:        {self.hedges} hedged, {self.hedge_wins} secondary wins",
            f"breaker:        {self.breaker_opens} opens, {self.breaker_closes} closes",
            f"brownout:       {self.brownout_escalations} escalations, "
            f"{self.brownout_deescalations} de-escalations",
        ]

    def to_dict(self) -> Dict[str, int]:
        return {
            "retries": self.retries,
            "retry_budget_exhausted": self.retry_budget_exhausted,
            "timeouts": self.timeouts,
            "hedges": self.hedges,
            "hedge_wins": self.hedge_wins,
            "breaker_opens": self.breaker_opens,
            "breaker_closes": self.breaker_closes,
            "brownout_escalations": self.brownout_escalations,
            "brownout_deescalations": self.brownout_deescalations,
        }
