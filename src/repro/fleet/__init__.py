"""Cluster-scale serving simulation over the single-node serving engine.

The top layer of the stack: where :mod:`repro.serve` answers "what does
one node do with this trace", ``repro.fleet`` answers the scale-out
questions — how a *cluster* of heterogeneous accelerator replicas behaves
under realistic traffic shapes, what gets shed under overload, how fast an
autoscaler recovers the tail, and what a replica failure costs.

- :mod:`scenarios` — seeded workload generator (Poisson steady state,
  diurnal, flash-crowd, ramp, multi-tenant) with per-tenant SLOs and
  length distributions
- :mod:`fleet` — N replicas over heterogeneous design points with
  SLO-aware routing, admission control / load shedding, and failure
  injection + drain/recovery
- :mod:`autoscale` — utilization + p99 driven replica scaling with
  simulator-priced cold starts
- :mod:`chaos` — seeded chaos plans (fail-stop, gray/straggler windows,
  correlated zone outages) and the resilience policy that answers them:
  retries with exponential backoff + a retry budget, request hedging,
  per-replica circuit breakers, and brownout degradation
- :mod:`metrics` — empty-safe per-tenant / per-replica aggregation,
  goodput, shed rates
- :mod:`runner` — the deterministic event loop behind
  ``repro.cli loadtest`` and the ``cluster`` bench suite
- :mod:`columnar` — the columnar analytic engine: the same simulation
  re-expressed over numpy columns and memoized price tables, byte-exact
  against the event loop and two orders of magnitude faster, with
  deterministic time-window sharding

Everything runs on the simulated clock: same seed, byte-identical report.
"""

from .autoscale import AutoscalePolicy, Autoscaler, ScaleEvent
from .chaos import (
    BrownoutLadder,
    ChaosPlan,
    ChaosStats,
    CircuitBreaker,
    GrayWindow,
    ResiliencePolicy,
    RetryBudget,
    SHED_BREAKER,
    SHED_TIMEOUT,
    ZoneOutage,
    backoff_delay_ms,
    chaos_plan_from_dict,
    load_chaos_plan,
)
from .columnar import (
    ColumnarFleetState,
    ShardPartial,
    merge_shard_partials,
    native_available,
    run_scenario_columnar,
    shard_windows,
)
from .fleet import (
    Fleet,
    FleetConfig,
    Replica,
    ReplicaSpec,
    RequestRecord,
    SHED_NO_CAPACITY,
    SHED_OVERLOAD,
)
from .metrics import (
    FleetStats,
    ReplicaStats,
    TenantStats,
    build_fleet_stats,
    safe_percentile,
)
from .runner import FailureEvent, FleetReport, run_scenario
from .scenarios import (
    SCENARIO_NAMES,
    ColumnarTrace,
    FleetRequest,
    Scenario,
    TenantSpec,
    builtin_scenarios,
)

__all__ = [
    "AutoscalePolicy",
    "Autoscaler",
    "ScaleEvent",
    "BrownoutLadder",
    "ChaosPlan",
    "ChaosStats",
    "CircuitBreaker",
    "GrayWindow",
    "ResiliencePolicy",
    "RetryBudget",
    "SHED_BREAKER",
    "SHED_TIMEOUT",
    "ZoneOutage",
    "backoff_delay_ms",
    "chaos_plan_from_dict",
    "load_chaos_plan",
    "ColumnarFleetState",
    "ColumnarTrace",
    "ShardPartial",
    "merge_shard_partials",
    "native_available",
    "run_scenario_columnar",
    "shard_windows",
    "Fleet",
    "FleetConfig",
    "Replica",
    "ReplicaSpec",
    "RequestRecord",
    "SHED_NO_CAPACITY",
    "SHED_OVERLOAD",
    "FleetStats",
    "ReplicaStats",
    "TenantStats",
    "build_fleet_stats",
    "safe_percentile",
    "FailureEvent",
    "FleetReport",
    "run_scenario",
    "SCENARIO_NAMES",
    "FleetRequest",
    "Scenario",
    "TenantSpec",
    "builtin_scenarios",
]
