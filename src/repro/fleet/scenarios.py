"""Scenario workload generator: seeded request traces for cluster serving.

A :class:`Scenario` describes *traffic shape* (a time-varying arrival rate)
and *traffic content* (a mix of tenants, each with its own SLO, text-length
distribution, and pool of distinct texts).  ``generate(seed)`` turns it
into a concrete, fully deterministic list of :class:`FleetRequest` — same
seed, same trace, byte for byte, on every machine.

Arrival sampling uses Poisson thinning: draw a homogeneous Poisson process
at the scenario's peak rate, then keep each arrival with probability
``rate(t) / peak``.  That one mechanism covers every built-in shape:

- ``steady``       — constant-rate Poisson (the classic M/G/k feed)
- ``diurnal``      — a sinusoidal day/night curve, compressed to ms scale
- ``flash-crowd``  — steady baseline with a step burst window (the
  overload / load-shedding scenario)
- ``ramp``         — linearly growing rate (the autoscaler's bread and
  butter)
- ``multi-tenant`` — steady aggregate over three tenants with different
  SLOs and sequence-length distributions

Timescale note: these are *simulated* milliseconds.  A "diurnal" period of
60 ms is a day compressed a few million-fold — the queueing dynamics are
identical, and the traces stay cheap enough to run in tests and CI.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, replace
from typing import Dict, List, Optional, Tuple

import numpy as np

__all__ = [
    "TenantSpec",
    "FleetRequest",
    "ColumnarTrace",
    "Scenario",
    "builtin_scenarios",
    "SCENARIO_NAMES",
]

# Traces at or above this many candidate arrivals get the allocator tuned
# for multi-GB column churn (see _tune_malloc_for_giant_traces).
_GIANT_TRACE_CANDIDATES = 10_000_000
_malloc_tuned = False


def _tune_malloc_for_giant_traces(expected_candidates: int) -> None:
    """Keep giant numpy columns on the heap instead of bouncing via mmap.

    glibc serves allocations above its mmap threshold straight from
    ``mmap`` and hands them straight back to the kernel on free, so at
    100M-request scale every throwaway column pays the full page-fault-in
    cost — on slow fault paths the kernel time dwarfs the numpy compute.
    Raising the mmap and trim thresholds lets freed column memory be
    reused warm.  The switch is one-way and process-wide, so it is gated
    on giant traces: ordinary runs and the test suite keep the default
    allocator behavior.  Purely an allocator knob — results are
    byte-identical either way — and best-effort: a libc without
    ``mallopt`` (musl, macOS) is left untouched.
    """
    global _malloc_tuned
    if _malloc_tuned or expected_candidates < _GIANT_TRACE_CANDIDATES:
        return
    _malloc_tuned = True
    try:
        import ctypes
        import ctypes.util

        libc = ctypes.CDLL(ctypes.util.find_library("c") or "libc.so.6")
        libc.mallopt.argtypes = (ctypes.c_int, ctypes.c_int)
        m_trim_threshold, m_mmap_threshold = -1, -3
        int_max = 2**31 - 1
        libc.mallopt(m_mmap_threshold, int_max)
        libc.mallopt(m_trim_threshold, int_max)
    except Exception:
        pass


@dataclass(frozen=True)
class TenantSpec:
    """One traffic class: share of arrivals, SLO, and text shape."""

    name: str
    share: float = 1.0          # relative traffic weight within the scenario
    slo_ms: float = 150.0       # end-to-end latency target for this tenant
    min_words: int = 4          # shortest text, in whitespace words
    max_words: int = 24         # longest text (tokens ~= words + [CLS])
    pool_size: int = 32         # distinct texts (repetition -> cache hits)

    def __post_init__(self):
        if self.share <= 0:
            raise ValueError(f"tenant share must be > 0, got {self.share}")
        if self.slo_ms <= 0:
            raise ValueError(f"slo_ms must be > 0, got {self.slo_ms}")
        if not 1 <= self.min_words <= self.max_words:
            raise ValueError(
                f"need 1 <= min_words <= max_words, got "
                f"({self.min_words}, {self.max_words})"
            )
        if self.pool_size < 1:
            raise ValueError(f"pool_size must be >= 1, got {self.pool_size}")


@dataclass(frozen=True)
class FleetRequest:
    """One arrival of a cluster trace: a trace request plus tenancy."""

    tenant: str
    slo_ms: float
    text_a: str
    text_b: Optional[str]
    arrival_ms: float


@dataclass
class ColumnarTrace:
    """A scenario trace as parallel numpy columns instead of objects.

    The columnar fleet engine's native input: one row per arrival, with
    the text draw kept as a *pool index* (``draw``) rather than a
    materialized string.  ``materialize()`` recovers the exact
    :class:`FleetRequest` list ``Scenario.generate`` would have produced
    — same objects, same floats, same order — so the two representations
    are interchangeable by construction, not by convention.
    """

    name: str
    seed: int
    duration_ms: float            # scaled duration (the trace's horizon)
    tenants: Tuple[TenantSpec, ...]
    arrival_ms: np.ndarray        # float64 [n], non-decreasing
    tenant_idx: np.ndarray        # int64   [n], index into ``tenants``
    draw: np.ndarray              # int64   [n], index into the tenant's pool

    @property
    def num_requests(self) -> int:
        return int(self.arrival_ms.shape[0])

    def pools(self) -> List[List[str]]:
        """Each tenant's deterministic text pool (declaration order)."""
        return [_tenant_pool(tenant, self.seed) for tenant in self.tenants]

    def materialize(self) -> List[FleetRequest]:
        """The equivalent arrival-ordered :class:`FleetRequest` list."""
        names = [t.name for t in self.tenants]
        slos = [t.slo_ms for t in self.tenants]
        pools = self.pools()
        return [
            FleetRequest(
                tenant=names[idx],
                slo_ms=slos[idx],
                text_a=pools[idx][draw],
                text_b=None,
                arrival_ms=arrival,
            )
            for idx, draw, arrival in zip(
                self.tenant_idx.tolist(), self.draw.tolist(), self.arrival_ms.tolist()
            )
        ]


@dataclass(frozen=True)
class Scenario:
    """A named traffic shape over a tenant mix.

    ``profile`` selects the rate curve; the ``diurnal_*`` / ``flash_*`` /
    ``ramp_*`` fields parameterize it (unused ones are ignored).  Rates are
    the *aggregate* across tenants; each arrival is assigned a tenant by
    sampling the tenants' ``share`` weights.
    """

    name: str
    description: str
    duration_ms: float
    base_rate_rps: float                    # aggregate requests per second
    tenants: Tuple[TenantSpec, ...] = (TenantSpec(name="default"),)
    profile: str = "steady"                 # steady | diurnal | flash | ramp
    diurnal_amplitude: float = 0.0          # rate swing as a fraction of base
    diurnal_period_ms: float = 0.0
    flash_start_ms: float = 0.0
    flash_end_ms: float = 0.0
    flash_multiplier: float = 1.0
    ramp_end_multiplier: float = 1.0

    def __post_init__(self):
        if self.duration_ms <= 0:
            raise ValueError(f"duration_ms must be > 0, got {self.duration_ms}")
        if self.base_rate_rps <= 0:
            raise ValueError(f"base_rate_rps must be > 0, got {self.base_rate_rps}")
        if not self.tenants:
            raise ValueError("a scenario needs at least one tenant")
        if self.profile not in ("steady", "diurnal", "flash", "ramp"):
            raise ValueError(f"unknown rate profile {self.profile!r}")
        if self.profile == "diurnal" and not (
            0.0 <= self.diurnal_amplitude < 1.0 and self.diurnal_period_ms > 0
        ):
            raise ValueError("diurnal needs 0 <= amplitude < 1 and period > 0")
        if self.profile == "flash" and not (
            0.0 <= self.flash_start_ms < self.flash_end_ms <= self.duration_ms
            and self.flash_multiplier >= 1.0
        ):
            raise ValueError("flash needs start < end within duration, multiplier >= 1")
        if self.profile == "ramp" and self.ramp_end_multiplier < 1.0:
            raise ValueError("ramp_end_multiplier must be >= 1")

    # ------------------------------------------------------------------
    # rate curve
    # ------------------------------------------------------------------
    def rate_rps(self, t_ms: float) -> float:
        """Instantaneous aggregate arrival rate (requests/second) at ``t_ms``."""
        if self.profile == "steady":
            return self.base_rate_rps
        if self.profile == "diurnal":
            phase = 2.0 * math.pi * t_ms / self.diurnal_period_ms
            return self.base_rate_rps * (1.0 + self.diurnal_amplitude * math.sin(phase))
        if self.profile == "flash":
            if self.flash_start_ms <= t_ms < self.flash_end_ms:
                return self.base_rate_rps * self.flash_multiplier
            return self.base_rate_rps
        # ramp
        frac = min(1.0, t_ms / self.duration_ms)
        return self.base_rate_rps * (1.0 + (self.ramp_end_multiplier - 1.0) * frac)

    def rate_rps_array(self, t_ms: np.ndarray) -> np.ndarray:
        """Vectorized :meth:`rate_rps` over an array of timestamps.

        The generator's hot path: thinning a million candidate arrivals
        prices the rate curve once per candidate, so the curve must be a
        single numpy expression rather than a Python call per arrival.
        Agrees elementwise with :meth:`rate_rps`.
        """
        if self.profile == "steady":
            return np.full(t_ms.shape, self.base_rate_rps)
        if self.profile == "diurnal":
            # Same operation order as rate_rps so the two paths agree to
            # the last bit (a reassociated phase differs by ~1 ulp, which
            # is enough to flip a thinning keep-decision).
            phase = 2.0 * math.pi * t_ms / self.diurnal_period_ms
            return self.base_rate_rps * (1.0 + self.diurnal_amplitude * np.sin(phase))
        if self.profile == "flash":
            burst = (t_ms >= self.flash_start_ms) & (t_ms < self.flash_end_ms)
            return np.where(
                burst,
                self.base_rate_rps * self.flash_multiplier,
                self.base_rate_rps,
            )
        # ramp
        frac = np.minimum(1.0, t_ms / self.duration_ms)
        return self.base_rate_rps * (1.0 + (self.ramp_end_multiplier - 1.0) * frac)

    def peak_rate_rps(self) -> float:
        """The curve's maximum (the thinning envelope)."""
        if self.profile == "diurnal":
            return self.base_rate_rps * (1.0 + self.diurnal_amplitude)
        if self.profile == "flash":
            return self.base_rate_rps * self.flash_multiplier
        if self.profile == "ramp":
            return self.base_rate_rps * self.ramp_end_multiplier
        return self.base_rate_rps

    # ------------------------------------------------------------------
    # trace generation
    # ------------------------------------------------------------------
    def generate_columns(
        self, seed: int = 0, rate_scale: float = 1.0, duration_scale: float = 1.0
    ) -> ColumnarTrace:
        """Sample one deterministic trace as a :class:`ColumnarTrace`.

        Draws the *identical* RNG stream as :meth:`generate` always has —
        same chunked exponential gaps, same one-shot thinning uniforms,
        same tenant/choice draws in declaration order — so
        ``generate_columns(...).materialize() == generate(...)`` holds
        exactly, request for request and bit for bit.  The differences are
        purely representational: pool indices instead of strings, and
        memory discipline (in-place cumsum, sliced thinning, prompt
        frees) that keeps a 100M-request trace inside a few GB.

        Args:
            seed: RNG seed; equal arguments give byte-identical traces.
            rate_scale: Multiplier on the whole rate curve (lets tests and
                quick profiles shrink a scenario without reshaping it).
            duration_scale: Multiplier on the scenario duration.

        Returns:
            The trace as arrival-ordered parallel columns.
        """
        if rate_scale <= 0 or duration_scale <= 0:
            raise ValueError("rate_scale and duration_scale must be > 0")
        rng = np.random.default_rng([seed, _stable_hash(self.name)])
        duration = self.duration_ms * duration_scale
        # Stretch the curve's time axis with the duration so a scaled
        # flash-crowd keeps its burst in the same relative window.
        peak_per_ms = self.peak_rate_rps() * rate_scale / 1000.0

        # 1. Candidate arrivals: a homogeneous Poisson process at the peak
        #    rate, drawn as vectorized exponential gaps.  The chunk size is
        #    a deterministic function of the expected count, so the draw
        #    sequence — and therefore the trace — depends only on the
        #    arguments, never on timing or platform.
        mean_gap = 1.0 / peak_per_ms
        chunk = int(duration * peak_per_ms * 1.05) + 64
        _tune_malloc_for_giant_traces(chunk)
        blocks = [rng.exponential(mean_gap, size=chunk)]
        total = float(blocks[0].sum())
        while total < duration:
            block = rng.exponential(mean_gap, size=chunk)
            blocks.append(block)
            total += float(block.sum())
        gaps = np.concatenate(blocks) if len(blocks) > 1 else blocks[0]
        del blocks
        # cumsum of non-negative gaps is non-decreasing, so the historical
        # boolean filter ``times[times < duration]`` selects exactly the
        # prefix searchsorted finds — same elements, no 800MB mask copy.
        times = np.cumsum(gaps, out=gaps)
        n = int(np.searchsorted(times, duration, side="left"))
        times = times[:n]

        # 2. Poisson thinning: keep each candidate with probability
        #    rate(t) / peak.  Historically the uniforms came from a single
        #    ``rng.uniform(size=n)`` call; ``Generator.random`` fills the
        #    identical doubles from the identical stream (uniform is
        #    off + scale * random with off=0, scale=1, both exact), and
        #    filling them chunk by chunk into one reused scratch buffer
        #    draws the very same sequence — the generator has no carry
        #    between calls — without ever materializing the multi-GB
        #    uniform column.  Pinned by a stream-equivalence test in
        #    tests/fleet.  The rate curve is priced in the same slices
        #    because it is elementwise, so slicing cannot change a single
        #    keep decision but caps the working set.
        keep = np.empty(n, dtype=bool)
        step = 1 << 22
        ubuf = np.empty(min(step, n))
        for lo in range(0, n, step):
            sl = slice(lo, min(lo + step, n))
            u = rng.random(out=ubuf[: sl.stop - lo])
            rates_per_ms = self.rate_rps_array(times[sl] / duration_scale)
            np.multiply(rates_per_ms, rate_scale / 1000.0, out=rates_per_ms)
            np.multiply(u, peak_per_ms, out=u)
            np.less_equal(u, rates_per_ms, out=keep[sl])
        arrival = np.ascontiguousarray(times[keep])
        del times, keep, gaps
        count = int(arrival.shape[0])

        # 3. Tenant assignment and per-tenant text draws, batched by tenant
        #    in declaration order (a fixed order keeps the stream stable).
        shares = np.array([t.share for t in self.tenants], dtype=float)
        shares /= shares.sum()
        if len(self.tenants) == 1 and count:
            # ``choice(1, size=n, p=[1.0])`` consumes exactly n doubles
            # from the stream and always returns zeros; burn those doubles
            # through the thinning scratch buffer instead of paying the
            # cdf search (or an 800MB throwaway column).  Pinned by a
            # stream-equivalence test in tests/fleet.
            for lo in range(0, count, step):
                rng.random(out=ubuf[: min(step, count - lo)])
            tenant_idx = np.zeros(count, dtype=np.int64)
        else:
            tenant_idx = rng.choice(len(self.tenants), size=count, p=shares)
        del ubuf
        if len(self.tenants) == 1 and count:
            # Single tenant: every candidate is "mine", so the masked
            # scatter below would be an identity permutation — draw the
            # same stream segment straight into the column.
            draw = rng.integers(self.tenants[0].pool_size, size=count)
        else:
            draw = np.zeros(count, dtype=np.int64)
            for idx, tenant in enumerate(self.tenants):
                mine = tenant_idx == idx
                picks = int(mine.sum())
                if not picks:
                    continue
                # len(pool) == pool_size, so drawing against the size keeps
                # the stream identical without building the pool here.
                draw[mine] = rng.integers(tenant.pool_size, size=picks)

        return ColumnarTrace(
            name=self.name,
            seed=seed,
            duration_ms=duration,
            tenants=self.tenants,
            arrival_ms=arrival,
            tenant_idx=tenant_idx,
            draw=draw,
        )

    def generate(
        self, seed: int = 0, rate_scale: float = 1.0, duration_scale: float = 1.0
    ) -> List[FleetRequest]:
        """Sample one deterministic trace of this scenario.

        A thin materializing wrapper over :meth:`generate_columns` — the
        columns are the single source of truth for the arrival process, so
        the object and columnar representations cannot drift apart.

        Args:
            seed: RNG seed; equal arguments give byte-identical traces.
            rate_scale: Multiplier on the whole rate curve (lets tests and
                quick profiles shrink a scenario without reshaping it).
            duration_scale: Multiplier on the scenario duration.

        Returns:
            Arrival-ordered :class:`FleetRequest` list (possibly empty for
            tiny scales — degenerate traces are legal fleet inputs).
        """
        return self.generate_columns(seed, rate_scale, duration_scale).materialize()

    def scaled(self, **overrides) -> "Scenario":
        """A copy with fields replaced (tests tweak rates without rebuilding)."""
        return replace(self, **overrides)


def _stable_hash(name: str) -> int:
    """A platform-stable 32-bit hash of the scenario name (seeds the rng)."""
    import zlib

    return zlib.crc32(name.encode("utf-8"))


def _tenant_pool(tenant: TenantSpec, seed: int) -> List[str]:
    """The tenant's deterministic pool of distinct texts.

    Word counts are drawn uniformly from the tenant's range; words come
    from a compact synthetic vocabulary, prefixed with the tenant name so
    no two tenants collide in the fleet-wide tokenization caches.
    """
    rng = np.random.default_rng([seed, _stable_hash(tenant.name), 1])
    pool = []
    for _ in range(tenant.pool_size):
        words = int(rng.integers(tenant.min_words, tenant.max_words + 1))
        pool.append(
            " ".join(f"{tenant.name}w{int(rng.integers(0, 500))}" for _ in range(words))
        )
    return pool


# ----------------------------------------------------------------------
# the built-in scenario catalog
# ----------------------------------------------------------------------
def builtin_scenarios() -> Dict[str, Scenario]:
    """The scenario catalog behind ``repro.cli loadtest --scenario``.

    Rates are sized for a handful of simulated ZCU102-class replicas of a
    small model; ``rate_scale`` shrinks or grows any of them without
    changing shape.
    """
    return {
        s.name: s
        for s in (
            Scenario(
                name="steady",
                description="constant-rate Poisson steady state",
                duration_ms=240.0,
                base_rate_rps=900.0,
            ),
            Scenario(
                name="diurnal",
                description="sinusoidal day/night curve (compressed to ms)",
                duration_ms=240.0,
                base_rate_rps=800.0,
                profile="diurnal",
                diurnal_amplitude=0.7,
                diurnal_period_ms=120.0,
            ),
            Scenario(
                name="flash-crowd",
                description="steady baseline with an 8x burst window",
                duration_ms=300.0,
                base_rate_rps=300.0,
                profile="flash",
                flash_start_ms=80.0,
                flash_end_ms=150.0,
                flash_multiplier=8.0,
            ),
            Scenario(
                name="ramp",
                description="linear ramp to 5x the starting rate",
                duration_ms=240.0,
                base_rate_rps=400.0,
                profile="ramp",
                ramp_end_multiplier=5.0,
            ),
            Scenario(
                name="multi-tenant",
                description="three tenants with distinct SLOs and lengths",
                duration_ms=240.0,
                base_rate_rps=900.0,
                tenants=(
                    TenantSpec(
                        name="interactive",
                        share=0.5,
                        slo_ms=60.0,
                        min_words=3,
                        max_words=10,
                        pool_size=24,
                    ),
                    TenantSpec(
                        name="standard",
                        share=0.3,
                        slo_ms=150.0,
                        min_words=8,
                        max_words=24,
                        pool_size=32,
                    ),
                    TenantSpec(
                        name="batch",
                        share=0.2,
                        slo_ms=600.0,
                        min_words=24,
                        max_words=56,
                        pool_size=16,
                    ),
                ),
            ),
        )
    }


SCENARIO_NAMES: Tuple[str, ...] = tuple(sorted(builtin_scenarios()))
