"""The scenario runner: one event loop over arrivals, ticks, and failures.

``run_scenario`` merges three event streams onto the shared simulated
clock — request arrivals from the scenario trace, autoscaler evaluation
ticks, and the failure plan's fail/recover points — processes them in
deterministic time order, drains the fleet, and aggregates a
:class:`FleetReport`.  Same seed, same inputs, byte-identical report.

Event ordering at equal timestamps is fixed (recover < gray-end < fail <
gray-start < arrival < retry < tick) so a replica recovering exactly when
a request arrives is routable for it, a gray window closing at a failure
instant clears the slowdown first, retries landing with an arrival yield
to it, and a tick sees the state *after* the traffic of its instant.
The relative order of the original kinds (recover < fail < arrival <
tick) is unchanged, so pre-chaos runs keep their exact bytes.
"""

from __future__ import annotations

import heapq
import json
import math
from dataclasses import dataclass, replace
from typing import List, Optional, Sequence, Union

from .autoscale import AutoscalePolicy, Autoscaler
from .chaos import ChaosPlan, ResiliencePolicy
from .fleet import Fleet, FleetConfig, ReplicaSpec
from .metrics import FleetStats, build_fleet_stats
from .scenarios import FleetRequest, Scenario, builtin_scenarios

# event kinds, in same-timestamp processing order
_RECOVER, _GRAY_END, _FAIL, _GRAY_START, _ARRIVAL, _RETRY, _TICK = range(7)


def control_events(
    duration_ms: float,
    autoscale: Optional[AutoscalePolicy],
    failures: Sequence["FailureEvent"],
    first_seq: int,
    grays: Sequence = (),
) -> List[tuple]:
    """Ticks, failures, and gray windows as ``(time, kind, seq, payload)``.

    The single source of the non-arrival event stream, shared by the
    event-loop runner and the columnar engine so both see *identical*
    tick timestamps — the tick clock accumulates float additions, and
    regenerating it with multiplication instead would drift by an ulp
    and desynchronize the two engines.

    Args:
        duration_ms: Scaled scenario horizon (ticks stop at it).
        autoscale: The autoscaler policy, or ``None`` for no ticks.
        failures: Planned replica failures/recoveries.
        first_seq: Sequence number of the first generated event (the
            runner numbers arrivals first).
        grays: :class:`~repro.fleet.chaos.GrayWindow` straggler windows
            (a start event carries ``(replica_id, slowdown, end_ms)``, an
            end event carries the replica id).

    Returns:
        Event tuples in generation order (not time-sorted).
    """
    events: List[tuple] = []
    seq = first_seq
    if autoscale is not None:
        tick = autoscale.interval_ms
        while tick <= duration_ms:
            events.append((tick, _TICK, seq, None))
            seq += 1
            tick += autoscale.interval_ms
    for failure in failures:
        events.append((failure.fail_ms, _FAIL, seq, failure.replica_id))
        seq += 1
        if failure.recover_ms is not None:
            events.append((failure.recover_ms, _RECOVER, seq, failure.replica_id))
            seq += 1
    for gray in grays:
        events.append(
            (gray.start_ms, _GRAY_START, seq, (gray.replica_id, gray.slowdown, gray.end_ms))
        )
        seq += 1
        events.append((gray.end_ms, _GRAY_END, seq, gray.replica_id))
        seq += 1
    return events


@dataclass(frozen=True)
class FailureEvent:
    """One replica's planned fail-stop (and optional recovery)."""

    replica_id: int
    fail_ms: float
    recover_ms: Optional[float] = None

    def __post_init__(self):
        if self.replica_id < 0:
            raise ValueError(f"replica_id must be >= 0, got {self.replica_id}")
        if not math.isfinite(self.fail_ms) or self.fail_ms < 0:
            raise ValueError(f"fail_ms must be finite and >= 0, got {self.fail_ms}")
        if self.recover_ms is not None:
            if not math.isfinite(self.recover_ms):
                raise ValueError(f"recover_ms must be finite, got {self.recover_ms}")
            if self.recover_ms <= self.fail_ms:
                raise ValueError(
                    f"recover_ms ({self.recover_ms}) must come after "
                    f"fail_ms ({self.fail_ms})"
                )


@dataclass
class FleetReport:
    """One fleet run's full result: config echo plus aggregate stats."""

    scenario: str
    seed: int
    num_initial_replicas: int
    autoscaled: bool
    stats: FleetStats

    def render(self) -> str:
        """Deterministic human-readable report."""
        header = (
            f"scenario: {self.scenario}  (seed {self.seed}, "
            f"{self.num_initial_replicas} initial replica(s), "
            f"autoscale {'on' if self.autoscaled else 'off'})"
        )
        return header + "\n" + self.stats.render()

    def to_json(self) -> str:
        """Stable JSON (sorted keys) for files and byte-compare tests."""
        doc = {
            "scenario": self.scenario,
            "seed": self.seed,
            "num_initial_replicas": self.num_initial_replicas,
            "autoscaled": self.autoscaled,
            "stats": self.stats.to_dict(),
        }
        return json.dumps(doc, indent=2, sort_keys=True) + "\n"


def run_scenario(
    scenario: Union[str, Scenario, Sequence[FleetRequest]],
    model,
    tokenizer,
    specs: List[ReplicaSpec],
    fleet_config: FleetConfig = FleetConfig(),
    autoscale: Optional[AutoscalePolicy] = None,
    scale_spec: Optional[ReplicaSpec] = None,
    failures: Sequence[FailureEvent] = (),
    seed: int = 0,
    rate_scale: float = 1.0,
    duration_scale: float = 1.0,
    analytic: bool = False,
    obs=None,
    chaos: Optional[ChaosPlan] = None,
    resilience: Optional[ResiliencePolicy] = None,
) -> FleetReport:
    """Run one scenario through a fleet and aggregate the report.

    Args:
        scenario: A built-in scenario name, a :class:`Scenario`, or an
            already generated trace (a sequence of :class:`FleetRequest`).
        model: Frozen integer model shared by every replica.
        tokenizer: Tokenizer shared by every replica.
        specs: Initial replica design points.
        fleet_config: Cluster policy (per-replica serving config, admission).
        autoscale: Enable the autoscaler with this policy (``None`` = fixed
            fleet).
        scale_spec: Design point for scale-up replicas (default: first spec).
        failures: Planned replica failures/recoveries.
        seed: Trace seed (ignored when ``scenario`` is a pre-built trace).
        rate_scale: Rate multiplier passed to scenario generation.
        duration_scale: Duration multiplier passed to scenario generation.
        analytic: Force latency-only execution on every replica (see
            :class:`~repro.serve.ServingConfig`): batches are priced by the
            simulator schedule but model forwards are skipped, making the
            report byte-identical to executed mode at a fraction of the
            cost.  ``False`` leaves ``fleet_config.serving.analytic``
            as configured.
        obs: Optional :class:`repro.obs.FleetObserver`.  Attaching one
            never changes a report byte; it only taps the run for metrics,
            traces, and rolling windows, and is finalized against the
            report before returning.  ``None`` (or a falsy null sink)
            keeps the hot loop free of instrumentation.
        chaos: Optional :class:`~repro.fleet.chaos.ChaosPlan`.  Its
            fail-stop and zone-outage events are appended after any
            explicit ``failures``; its gray windows stretch the named
            replica's realized service times over ``[start, end)``.
        resilience: Optional :class:`~repro.fleet.chaos.ResiliencePolicy`.
            When given, arrivals go through the resilient admission path
            (timeout fail-fast, circuit breaker, brownout ladder, retries
            with seeded backoff, hedging) and the report gains a ``chaos``
            stats section.  ``None`` keeps the plain fast path and the
            report's historical bytes.

    Returns:
        The :class:`FleetReport` (deterministic for equal arguments).
    """
    obs = obs or None
    grays = ()
    if chaos is not None:
        failures = tuple(failures) + chaos.failure_events()
        grays = chaos.grays
    if analytic:
        fleet_config = replace(
            fleet_config, serving=replace(fleet_config.serving, analytic=True)
        )
    if isinstance(scenario, str):
        catalog = builtin_scenarios()
        if scenario not in catalog:
            raise ValueError(
                f"unknown scenario {scenario!r}; choose from {sorted(catalog)}"
            )
        scenario = catalog[scenario]
    if isinstance(scenario, Scenario):
        name = scenario.name
        duration_ms = scenario.duration_ms * duration_scale
        trace = scenario.generate(
            seed=seed, rate_scale=rate_scale, duration_scale=duration_scale
        )
    else:
        trace = sorted(scenario, key=lambda r: r.arrival_ms)
        name = "custom-trace"
        duration_ms = trace[-1].arrival_ms if trace else 0.0

    fleet = Fleet(
        model, tokenizer, specs, fleet_config, obs=obs, resilience=resilience, seed=seed
    )
    if obs is not None and trace:
        # The whole trace is known before the loop starts, so arrival
        # windows are recorded in one bulk call instead of once per
        # submit.  Watermark-safe: recording early only makes records
        # available sooner than any flush that could close their window.
        obs.on_arrivals([request.arrival_ms for request in trace])
    autoscaler = (
        Autoscaler(fleet, autoscale, scale_spec=scale_spec, obs=obs)
        if autoscale
        else None
    )

    # ------------------------------------------------------------------
    # merge the event streams: (time, kind, seq, payload)
    # ------------------------------------------------------------------
    # Build the full event list and heapify once — O(N) instead of N
    # heappushes over the (already sorted) trace.  Identical pop order:
    # every (time, kind, seq) key is unique, so the heap's total order is
    # the same however it was built.
    events: List = []
    seq = 0
    for request in trace:
        events.append((request.arrival_ms, _ARRIVAL, seq, request))
        seq += 1
    control = control_events(
        duration_ms,
        autoscale if autoscaler is not None else None,
        failures,
        seq,
        grays=grays,
    )
    seq += len(control)  # retries are numbered after all static events
    events.extend(control)
    heapq.heapify(events)

    heappop = heapq.heappop
    heappush = heapq.heappush
    advance = fleet.advance
    resilient = resilience is not None and resilience.enabled
    submit = fleet.submit_resilient if resilient else fleet.submit
    take_retries = fleet.take_retries if resilient else None
    while events:
        time_ms, kind, _, payload = heappop(events)
        advance(time_ms)
        if kind == _ARRIVAL:
            submit(payload)
        elif kind == _TICK:
            autoscaler.tick(time_ms)
        elif kind == _RETRY:
            fleet.retry_attempt(payload, time_ms)
        elif kind == _FAIL:
            fleet.fail_replica(payload, time_ms)
        elif kind == _GRAY_START:
            rid, slowdown, end_ms = payload
            fleet.set_slowdown(rid, slowdown)
            if obs is not None:
                obs.on_gray(rid, time_ms, end_ms, slowdown)
        elif kind == _GRAY_END:
            fleet.set_slowdown(payload, 1.0)
        else:  # _RECOVER
            fleet.recover_replica(payload, time_ms)
        if take_retries is not None:
            # Failed admissions scheduled a backoff retry: re-enter the
            # event stream as first-class timed events so retries race
            # arrivals/ticks/failures on the shared simulated clock.
            for retry_ms, record, request, attempt in take_retries():
                heappush(events, (retry_ms, _RETRY, seq, (record, request, attempt)))
                seq += 1
        if obs is not None and kind != _ARRIVAL:
            # Watermark-safe: fleet.advance(time_ms) already fired every
            # batching deadline <= time_ms, so no future record can land
            # at or before this instant — windows ending here are final.
            obs.advance(time_ms)

    fleet.drain()
    records = fleet.collect()
    last_finish = max((r.finish_ms for r in records if r.completed), default=0.0)
    stats = build_fleet_stats(
        records,
        replicas=list(fleet.replicas.values()),
        scale_events=autoscaler.events if autoscaler else [],
        duration_ms=max(duration_ms, last_finish),
        # The chaos section appears iff the caller opted into the chaos
        # layer (a plan or a policy) — plain runs keep their exact bytes.
        chaos=fleet.chaos if (chaos is not None or resilience is not None) else None,
    )
    report = FleetReport(
        scenario=name,
        seed=seed,
        num_initial_replicas=len(specs),
        autoscaled=autoscaler is not None,
        stats=stats,
    )
    if obs is not None:
        obs.finalize(report)
    return report
