"""Fleet-level metrics: per-tenant and per-replica views, goodput, sheds.

Every aggregate here is **empty-safe**: a trace where everything was shed
(or nothing arrived) summarizes to zeros instead of raising — degenerate
traces are legitimate outcomes of overload scenarios, and the report must
describe them, not crash on them.  All quantities come from the simulated
clock, so reports are byte-identical across runs of the same seed.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Sequence

import numpy as np

from ..serve.metrics import percentile, percentile_sorted
from .autoscale import ScaleEvent
from .chaos import ChaosStats
from .fleet import Replica, RequestRecord


def safe_percentile(values: Sequence[float], q: float) -> float:
    """:func:`repro.serve.metrics.percentile`, but 0.0 for an empty input.

    Emptiness is checked with ``len()`` (not truthiness) so numpy latency
    columns — including the degenerate single-element and empty shards the
    merge path produces — take the same branches as plain lists.
    """
    if len(values) == 0:
        return 0.0
    return percentile(values, q)


@dataclass
class TenantStats:
    """One tenant's slice of a fleet run."""

    tenant: str
    submitted: int
    completed: int
    shed: int
    slo_met: int
    p50_latency_ms: float
    p95_latency_ms: float
    p99_latency_ms: float
    mean_latency_ms: float
    goodput_rps: float          # SLO-met completions per simulated second

    @property
    def shed_rate(self) -> float:
        return self.shed / self.submitted if self.submitted else 0.0

    @property
    def slo_attainment(self) -> float:
        """SLO-met fraction of *submitted* traffic (sheds count against it)."""
        return self.slo_met / self.submitted if self.submitted else 1.0


@dataclass
class ReplicaStats:
    """One replica's service record over the run."""

    replica_id: int
    spec_label: str
    added_ms: float
    retired_ms: float           # < 0 when still live at the end
    failures: int
    busy_ms: float
    batches_served: int
    requests_served: int
    utilization: float          # busy fraction of its live time


@dataclass
class FleetStats:
    """Aggregate view of one fleet run (the runner's report payload)."""

    duration_ms: float
    submitted: int
    completed: int
    shed: int
    migrations: int
    slo_met: int
    p50_latency_ms: float
    p95_latency_ms: float
    p99_latency_ms: float
    mean_latency_ms: float
    max_latency_ms: float
    throughput_rps: float       # completions per simulated second
    goodput_rps: float          # SLO-met completions per simulated second
    shed_by_reason: Dict[str, int] = field(default_factory=dict)
    tenants: Dict[str, TenantStats] = field(default_factory=dict)
    replicas: List[ReplicaStats] = field(default_factory=list)
    scale_events: List[ScaleEvent] = field(default_factory=list)
    # Resilience counters; None unless a ResiliencePolicy was active, so
    # plain runs render/serialize their exact pre-chaos bytes.
    chaos: Optional[ChaosStats] = None

    @property
    def shed_rate(self) -> float:
        return self.shed / self.submitted if self.submitted else 0.0

    @property
    def slo_attainment(self) -> float:
        return self.slo_met / self.submitted if self.submitted else 1.0

    # ------------------------------------------------------------------
    def render(self) -> str:
        """Deterministic human-readable report (the loadtest CLI output)."""
        lines = [
            f"requests:       {self.submitted} submitted, {self.completed} "
            f"completed, {self.shed} shed ({self.shed_rate * 100:.1f}%)",
            f"migrations:     {self.migrations}",
            f"duration:       {self.duration_ms:.2f} ms (simulated)",
            f"throughput:     {self.throughput_rps:.2f} req/s",
            f"goodput:        {self.goodput_rps:.2f} req/s (SLO-met completions)",
            f"SLO attainment: {self.slo_attainment * 100:.1f}% of submitted",
            f"latency p50/p95/p99: {self.p50_latency_ms:.2f} / "
            f"{self.p95_latency_ms:.2f} / {self.p99_latency_ms:.2f} ms",
            f"latency mean/max:    {self.mean_latency_ms:.2f} / "
            f"{self.max_latency_ms:.2f} ms",
        ]
        for reason in sorted(self.shed_by_reason):
            lines.append(f"shed[{reason}]:  {self.shed_by_reason[reason]}")
        if self.chaos is not None:
            lines.extend(self.chaos.render())
        for name in sorted(self.tenants):
            t = self.tenants[name]
            lines.append(
                f"tenant {name}: {t.submitted} req, shed {t.shed_rate * 100:.1f}%, "
                f"p99 {t.p99_latency_ms:.2f} ms, goodput {t.goodput_rps:.2f} req/s, "
                f"SLO {t.slo_attainment * 100:.1f}%"
            )
        for r in self.replicas:
            state = "live" if r.retired_ms < 0 else f"retired@{r.retired_ms:.2f}"
            lines.append(
                f"replica {r.replica_id} [{r.spec_label}] {state}: "
                f"{r.requests_served} req in {r.batches_served} batches, "
                f"util {r.utilization * 100:.1f}%, failures {r.failures}"
            )
        for event in self.scale_events:
            lines.append(event.render())
        return "\n".join(lines)

    def to_dict(self) -> Dict:
        """JSON-ready stable dict (sorted keys downstream)."""
        doc = self._base_dict()
        if self.chaos is not None:
            doc["chaos"] = self.chaos.to_dict()
        return doc

    def _base_dict(self) -> Dict:
        return {
            "duration_ms": self.duration_ms,
            "submitted": self.submitted,
            "completed": self.completed,
            "shed": self.shed,
            "shed_rate": self.shed_rate,
            "shed_by_reason": dict(sorted(self.shed_by_reason.items())),
            "migrations": self.migrations,
            "slo_met": self.slo_met,
            "slo_attainment": self.slo_attainment,
            "p50_latency_ms": self.p50_latency_ms,
            "p95_latency_ms": self.p95_latency_ms,
            "p99_latency_ms": self.p99_latency_ms,
            "mean_latency_ms": self.mean_latency_ms,
            "max_latency_ms": self.max_latency_ms,
            "throughput_rps": self.throughput_rps,
            "goodput_rps": self.goodput_rps,
            "tenants": {
                name: {
                    "submitted": t.submitted,
                    "completed": t.completed,
                    "shed": t.shed,
                    "shed_rate": t.shed_rate,
                    "slo_met": t.slo_met,
                    "slo_attainment": t.slo_attainment,
                    "p50_latency_ms": t.p50_latency_ms,
                    "p95_latency_ms": t.p95_latency_ms,
                    "p99_latency_ms": t.p99_latency_ms,
                    "mean_latency_ms": t.mean_latency_ms,
                    "goodput_rps": t.goodput_rps,
                }
                for name, t in sorted(self.tenants.items())
            },
            "replicas": [
                {
                    "replica_id": r.replica_id,
                    "spec": r.spec_label,
                    "added_ms": r.added_ms,
                    "retired_ms": r.retired_ms,
                    "failures": r.failures,
                    "busy_ms": r.busy_ms,
                    "batches_served": r.batches_served,
                    "requests_served": r.requests_served,
                    "utilization": r.utilization,
                }
                for r in self.replicas
            ],
            "scale_events": [
                {
                    "time_ms": e.time_ms,
                    "action": e.action,
                    "reason": e.reason,
                    "replicas_after": e.replicas_after,
                }
                for e in self.scale_events
            ],
        }


def _latency_block(latencies: List[float]) -> Dict[str, float]:
    """Percentiles/mean/max of one latency list, sorting exactly once.

    The mean still sums the *unsorted* list (same accumulation order as
    before the single-sort change), so outputs stay byte-identical to the
    seed implementation — the property the determinism tests pin.
    """
    if not latencies:
        return {"p50": 0.0, "p95": 0.0, "p99": 0.0, "mean": 0.0, "max": 0.0}
    ordered = sorted(latencies)
    return {
        "p50": percentile_sorted(ordered, 50),
        "p95": percentile_sorted(ordered, 95),
        "p99": percentile_sorted(ordered, 99),
        "mean": sum(latencies) / len(latencies),
        "max": ordered[-1],
    }


def build_fleet_stats(
    records: List[RequestRecord],
    replicas: List[Replica],
    scale_events: List[ScaleEvent],
    duration_ms: float,
    chaos: Optional[ChaosStats] = None,
) -> FleetStats:
    """Aggregate a finished fleet run into :class:`FleetStats`.

    Args:
        records: All request records (collected — completions filled in).
        replicas: Every replica that ever existed (live and retired).
        scale_events: The autoscaler's audit trail (empty if disabled).
        duration_ms: Denominator for throughput/goodput — the scenario
            duration or the last completion, whichever is later.
        chaos: Resilience counters when a policy was active, else ``None``
            (the report then keeps its pre-chaos bytes).

    Returns:
        The empty-safe :class:`FleetStats`.
    """
    # One pass over the records fills every aggregate: the per-tenant views
    # used to re-scan the full record list once per tenant, which is the
    # difference between O(N) and O(N * tenants) on million-request traces.
    completed: List[RequestRecord] = []
    num_shed = 0
    slo_met = 0
    migrations = 0
    shed_by_reason: Dict[str, int] = {}
    by_tenant: Dict[str, List[RequestRecord]] = {}
    for r in records:
        by_tenant.setdefault(r.tenant, []).append(r)
        migrations += r.migrations
        if r.completed:
            completed.append(r)
            if r.slo_met:
                slo_met += 1
        if r.shed:
            num_shed += 1
            shed_by_reason[r.shed_reason] = shed_by_reason.get(r.shed_reason, 0) + 1
    latencies = [r.latency_ms for r in completed]
    overall = _latency_block(latencies)
    seconds = duration_ms / 1000.0 if duration_ms > 0 else 0.0

    tenants: Dict[str, TenantStats] = {}
    for name in sorted(by_tenant):
        t_records = by_tenant[name]
        t_completed = [r for r in t_records if r.completed]
        t_latencies = [r.latency_ms for r in t_completed]
        t_block = _latency_block(t_latencies)
        t_slo_met = sum(r.slo_met for r in t_completed)
        tenants[name] = TenantStats(
            tenant=name,
            submitted=len(t_records),
            completed=len(t_completed),
            shed=sum(r.shed for r in t_records),
            slo_met=t_slo_met,
            p50_latency_ms=t_block["p50"],
            p95_latency_ms=t_block["p95"],
            p99_latency_ms=t_block["p99"],
            mean_latency_ms=t_block["mean"],
            goodput_rps=t_slo_met / seconds if seconds else 0.0,
        )

    replica_stats: List[ReplicaStats] = []
    for replica in sorted(replicas, key=lambda r: r.replica_id):
        devices = replica.engine.router.devices
        busy = sum(d.busy_ms for d in devices)
        end = replica.retired_ms if replica.retired_ms is not None else duration_ms
        # Failure downtime is not live time — a replica down for a third of
        # the run should not have its utilization diluted by the outage.
        lifetime = max(0.0, end - replica.added_ms - replica.downtime_ms)
        replica_stats.append(
            ReplicaStats(
                replica_id=replica.replica_id,
                spec_label=replica.spec.label,
                added_ms=replica.added_ms,
                retired_ms=replica.retired_ms if replica.retired_ms is not None else -1.0,
                failures=replica.failures,
                busy_ms=busy,
                batches_served=sum(d.batches_served for d in devices),
                requests_served=sum(d.requests_served for d in devices),
                utilization=min(1.0, busy / lifetime) if lifetime > 0 else 0.0,
            )
        )

    return FleetStats(
        duration_ms=duration_ms,
        submitted=len(records),
        completed=len(completed),
        shed=num_shed,
        migrations=migrations,
        slo_met=slo_met,
        p50_latency_ms=overall["p50"],
        p95_latency_ms=overall["p95"],
        p99_latency_ms=overall["p99"],
        mean_latency_ms=overall["mean"],
        max_latency_ms=overall["max"],
        throughput_rps=len(completed) / seconds if seconds else 0.0,
        goodput_rps=slo_met / seconds if seconds else 0.0,
        shed_by_reason=shed_by_reason,
        tenants=tenants,
        replicas=replica_stats,
        scale_events=list(scale_events),
        chaos=chaos,
    )


# ----------------------------------------------------------------------
# columnar aggregation: same numbers, array inputs
# ----------------------------------------------------------------------
def _latency_block_columns(latencies: np.ndarray) -> Dict[str, float]:
    """:func:`_latency_block` over a float64 column, bit-identical.

    ``np.sort`` is a permutation of the same doubles, ``np.cumsum`` is the
    same left-to-right accumulation as ``sum(list)`` (both pinned by
    tests), and :func:`percentile_sorted` interpolates identically on
    numpy scalars — so every field matches the list path exactly.
    """
    n = int(latencies.shape[0])
    if n == 0:
        return {"p50": 0.0, "p95": 0.0, "p99": 0.0, "mean": 0.0, "max": 0.0}
    # Only seven order statistics are ever read (p50/p95/p99 bracket
    # pairs + max), so one introselect pass places exactly those instead
    # of fully sorting the column — the kth element of a partition is the
    # same double sorting would put there.
    brackets = {}
    wanted = {n - 1}
    for q in (50, 95, 99):
        rank = (q / 100.0) * (n - 1)
        lower = int(rank)
        upper = min(lower + 1, n - 1)
        brackets[q] = (rank, lower, upper)
        wanted.update((lower, upper))
    kth = sorted(wanted)
    part = np.partition(latencies, kth)

    def interp(q: int) -> float:
        rank, lower, upper = brackets[q]
        frac = rank - lower
        # identical arithmetic to percentile_sorted on the same scalars
        return float(part[lower] * (1.0 - frac) + part[upper] * frac)

    return {
        "p50": interp(50),
        "p95": interp(95),
        "p99": interp(99),
        "mean": float(np.cumsum(latencies)[-1]) / n,
        "max": float(part[n - 1]),
    }


def build_replica_stats(
    replica_id: int,
    spec_label: str,
    added_ms: float,
    retired_ms: Optional[float],
    failures: int,
    busy_ms: float,
    batches_served: int,
    requests_served: int,
    downtime_ms: float,
    duration_ms: float,
) -> ReplicaStats:
    """One :class:`ReplicaStats` row from scalar counters.

    The exact arithmetic of :func:`build_fleet_stats`'s replica loop,
    factored out so the columnar engine (which carries these counters in
    its shard state instead of live ``Replica`` objects) produces the
    same rows bit for bit.
    """
    end = retired_ms if retired_ms is not None else duration_ms
    # Failure downtime is not live time — a replica down for a third of
    # the run should not have its utilization diluted by the outage.
    lifetime = max(0.0, end - added_ms - downtime_ms)
    return ReplicaStats(
        replica_id=replica_id,
        spec_label=spec_label,
        added_ms=added_ms,
        retired_ms=retired_ms if retired_ms is not None else -1.0,
        failures=failures,
        busy_ms=busy_ms,
        batches_served=batches_served,
        requests_served=requests_served,
        utilization=min(1.0, busy_ms / lifetime) if lifetime > 0 else 0.0,
    )


def build_fleet_stats_columns(
    *,
    duration_ms: float,
    tenant_names: Sequence[str],
    tenant_idx: np.ndarray,
    slo_ms: np.ndarray,
    arrival_ms: np.ndarray,
    finish_ms: np.ndarray,
    shed_code: np.ndarray,
    shed_reasons: Mapping[int, str],
    migrations: int,
    replicas: List[ReplicaStats],
    scale_events: List[ScaleEvent],
    chaos: Optional[ChaosStats] = None,
) -> FleetStats:
    """:func:`build_fleet_stats` over columns instead of record objects.

    One row per submitted request, in submission order: ``shed_code == 0``
    means completed (then ``finish_ms`` holds the completion time);
    non-zero codes map to shed reasons via ``shed_reasons``.  Latency is
    computed as ``finish - arrival`` exactly as ``RequestRecord.collect``
    does, per-tenant slices preserve submission order (boolean masks are
    order-preserving), and every reduction uses the accumulation order the
    record path uses — the outputs are bit-identical by construction and
    pinned by the differential suite.

    Args:
        duration_ms: Denominator for throughput/goodput — the scenario
            duration or the last completion, whichever is later.
        tenant_names: Tenant name per tenant index (declaration order).
        tenant_idx: Tenant index column, int per request.
        slo_ms: Per-request SLO column (float64).
        arrival_ms: Per-request arrival column (float64).
        finish_ms: Per-request completion time; only read where completed.
        shed_code: Per-request shed code (0 = completed).
        shed_reasons: Maps non-zero shed codes to reason strings.
        migrations: Total successful queue migrations.
        replicas: Prebuilt :class:`ReplicaStats` rows, id order.
        scale_events: The autoscaler's audit trail (empty if disabled).

    Returns:
        The empty-safe :class:`FleetStats`.
    """
    submitted = int(arrival_ms.shape[0])
    completed_mask = shed_code == 0
    num_completed = int(completed_mask.sum())
    num_shed = submitted - num_completed
    # finish - arrival is garbage on shed rows, but shed rows are never
    # selected; completed rows see the identical subtraction the record
    # path performs.
    latency = finish_ms - arrival_ms
    all_lat = latency[completed_mask]
    slo_met = int((all_lat <= slo_ms[completed_mask]).sum())
    overall = _latency_block_columns(all_lat)
    seconds = duration_ms / 1000.0 if duration_ms > 0 else 0.0

    shed_by_reason: Dict[str, int] = {}
    if num_shed:
        counts = np.bincount(shed_code)
        for code in range(1, counts.shape[0]):
            if counts[code]:
                shed_by_reason[shed_reasons[code]] = int(counts[code])

    if not submitted:
        present = np.zeros(len(tenant_names), dtype=np.int64)
    elif len(tenant_names) == 1:
        # One declared tenant: every request is its (skip the 100M bincount).
        present = np.array([submitted], dtype=np.int64)
    else:
        present = np.bincount(tenant_idx, minlength=len(tenant_names))
    tenants: Dict[str, TenantStats] = {}
    order = sorted(
        (name, tid) for tid, name in enumerate(tenant_names) if present[tid]
    )
    single_tenant = len(order) == 1 and int(present.sum()) == submitted
    for name, tid in order:
        if single_tenant:
            # One tenant owning every request: its slices are the overall
            # columns, so reuse the reductions instead of repeating a
            # 100M-row mask + sort (identical arrays, identical bytes).
            t_lat = all_lat
            t_block = overall
            t_slo_met = slo_met
            t_submitted, t_completed = submitted, num_completed
        else:
            t_mask = tenant_idx == tid
            t_comp = t_mask & completed_mask
            t_lat = latency[t_comp]
            t_block = _latency_block_columns(t_lat)
            t_slo_met = int((t_lat <= slo_ms[t_comp]).sum())
            t_submitted = int(t_mask.sum())
            t_completed = int(t_comp.sum())
        tenants[name] = TenantStats(
            tenant=name,
            submitted=t_submitted,
            completed=t_completed,
            shed=t_submitted - t_completed,
            slo_met=t_slo_met,
            p50_latency_ms=t_block["p50"],
            p95_latency_ms=t_block["p95"],
            p99_latency_ms=t_block["p99"],
            mean_latency_ms=t_block["mean"],
            goodput_rps=t_slo_met / seconds if seconds else 0.0,
        )

    return FleetStats(
        duration_ms=duration_ms,
        submitted=submitted,
        completed=num_completed,
        shed=num_shed,
        migrations=migrations,
        slo_met=slo_met,
        p50_latency_ms=overall["p50"],
        p95_latency_ms=overall["p95"],
        p99_latency_ms=overall["p99"],
        mean_latency_ms=overall["mean"],
        max_latency_ms=overall["max"],
        throughput_rps=num_completed / seconds if seconds else 0.0,
        goodput_rps=slo_met / seconds if seconds else 0.0,
        shed_by_reason=shed_by_reason,
        tenants=tenants,
        replicas=list(replicas),
        scale_events=list(scale_events),
        chaos=chaos,
    )
