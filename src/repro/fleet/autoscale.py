"""Reactive autoscaling from utilization and tail-latency signals.

The :class:`Autoscaler` ticks on a fixed simulated interval and looks at
what happened in the window just past:

- **utilization** — fleet-wide busy time divided by live capacity time,
  straight from the routers' busy accounting;
- **p99 latency** — the 99th percentile of requests *finishing* in the
  window (the engine's own latency accounting);
- **queue depth** — requests waiting in batchers right now.

Scale **up** when the window looks saturated (utilization above the high
water mark, p99 beyond the SLO headroom, or queues deeper than one full
batch per replica); scale **down** when it looks idle (utilization below
the low water mark *and* healthy p99 *and* empty queues).  A cooldown of
``cooldown_ticks`` intervals follows every action so one burst cannot
thrash the fleet, and the replica count is clamped to
``[min_replicas, max_replicas]``.

New replicas pay the fleet's cold-start penalty (see
:meth:`repro.fleet.fleet.Fleet.cold_start_ms`) — scaling is *not* free
capacity, which is exactly why flash crowds still shed briefly even with
the autoscaler on.  Scale-down retires the most recently added idle-most
replica and migrates its queue, so shrinking never drops accepted work.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from ..serve.metrics import percentile
from .fleet import Fleet, Replica, ReplicaSpec

SCALE_UP = "up"
SCALE_DOWN = "down"


@dataclass(frozen=True)
class AutoscalePolicy:
    """The autoscaler's knobs."""

    min_replicas: int = 1
    max_replicas: int = 6
    interval_ms: float = 20.0           # evaluation cadence (simulated)
    utilization_high: float = 0.80      # scale up above this busy fraction
    utilization_low: float = 0.25       # scale down below this busy fraction
    slo_headroom: float = 1.0           # scale up when p99 > headroom * SLO
    cooldown_ticks: int = 2             # quiet intervals after any action

    def __post_init__(self):
        if not 1 <= self.min_replicas <= self.max_replicas:
            raise ValueError("need 1 <= min_replicas <= max_replicas")
        if self.interval_ms <= 0:
            raise ValueError(f"interval_ms must be > 0, got {self.interval_ms}")
        if not 0.0 <= self.utilization_low < self.utilization_high <= 1.0:
            raise ValueError("need 0 <= utilization_low < utilization_high <= 1")
        if self.slo_headroom <= 0:
            raise ValueError(f"slo_headroom must be > 0, got {self.slo_headroom}")
        if self.cooldown_ticks < 0:
            raise ValueError(f"cooldown_ticks must be >= 0, got {self.cooldown_ticks}")


@dataclass(frozen=True)
class ScaleEvent:
    """One autoscaling action, for the report's audit trail."""

    time_ms: float
    action: str                 # "up" | "down"
    reason: str
    replicas_after: int

    def render(self) -> str:
        arrow = "+" if self.action == SCALE_UP else "-"
        return (
            f"t={self.time_ms:8.2f} ms  scale {arrow}1 -> "
            f"{self.replicas_after} replicas  ({self.reason})"
        )


class Autoscaler:
    """Tick-driven replica-count controller over one :class:`Fleet`."""

    def __init__(
        self,
        fleet: Fleet,
        policy: AutoscalePolicy = AutoscalePolicy(),
        scale_spec: Optional[ReplicaSpec] = None,
        obs=None,
    ):
        """Args:
            fleet: The fleet to control.
            policy: Scaling thresholds and cadence.
            scale_spec: Design point for scale-up replicas (default: the
                fleet's first replica's spec).
            obs: Optional :class:`repro.obs.FleetObserver` receiving tick
                signals and scale events.
        """
        self.fleet = fleet
        self.policy = policy
        self.obs = obs or None
        self.scale_spec = scale_spec or next(
            iter(sorted(fleet.replicas.values(), key=lambda r: r.replica_id))
        ).spec
        self.events: List[ScaleEvent] = []
        self._cooldown = 0
        self._last_tick_ms = 0.0
        self._busy_snapshot = self._total_busy_ms()

    # ------------------------------------------------------------------
    # signals
    # ------------------------------------------------------------------
    def _total_busy_ms(self) -> float:
        return sum(
            d.busy_ms
            for replica in self.fleet.replicas.values()
            for d in replica.engine.router.devices
        )

    def window_utilization(self, now_ms: float) -> float:
        """Busy fraction of live capacity over the window just ended."""
        window = now_ms - self._last_tick_ms
        live = len(self.fleet.live_replicas())
        if window <= 0 or live == 0:
            return 0.0
        busy_delta = self._total_busy_ms() - self._busy_snapshot
        return min(1.0, busy_delta / (window * live))

    def window_p99_over_slo(self, now_ms: float) -> float:
        """Worst p99-to-SLO ratio among requests finishing in the window.

        Uses the engines' own latency accounting (batch execution fixes
        each request's finish time as soon as it is scheduled, so requests
        "finish" on the simulated clock even mid-trace).  Returns 0.0 for
        an empty window.
        """
        samples: List[float] = []
        for replica in self.fleet.replicas.values():
            # Fleet replicas are single-device engines, so results land in
            # non-decreasing finish order; walking newest-first and breaking
            # at the window's left edge touches only the new results plus
            # the (queue-bounded) batch of future-scheduled finishes —
            # O(new) per tick instead of rescanning the whole history.
            for result in reversed(replica.engine.results.values()):
                if result.finish_ms <= self._last_tick_ms:
                    break
                if result.finish_ms <= now_ms:
                    samples.append(result.latency_ms)
        if not samples:
            return 0.0
        floor = self.fleet.min_accepted_slo_ms
        if not floor:
            return 0.0
        return percentile(samples, 99) / floor

    def queue_depth(self) -> int:
        """Requests currently waiting in live replicas' batchers."""
        return sum(r.engine.batcher.pending for r in self.fleet.live_replicas())

    # ------------------------------------------------------------------
    # control loop
    # ------------------------------------------------------------------
    def tick(self, now_ms: float) -> Optional[ScaleEvent]:
        """Evaluate one window and possibly scale by one replica.

        Args:
            now_ms: The tick's simulated time (call on a fixed cadence).

        Returns:
            The :class:`ScaleEvent` taken, or ``None``.
        """
        utilization = self.window_utilization(now_ms)
        p99_ratio = self.window_p99_over_slo(now_ms)
        depth = self.queue_depth()
        live = len(self.fleet.live_replicas())
        if self.obs is not None:
            self.obs.on_tick(now_ms, utilization, p99_ratio, depth)
        self._last_tick_ms = now_ms
        self._busy_snapshot = self._total_busy_ms()

        if self._cooldown > 0:
            self._cooldown -= 1
            return None

        policy = self.policy
        batch = self.fleet.config.serving.max_batch_size
        event: Optional[ScaleEvent] = None
        if live < policy.max_replicas and (
            utilization > policy.utilization_high
            or p99_ratio > policy.slo_headroom
            or depth > live * batch
        ):
            if utilization > policy.utilization_high:
                reason = f"utilization {utilization:.2f} > {policy.utilization_high:.2f}"
            elif p99_ratio > policy.slo_headroom:
                reason = f"p99 {p99_ratio:.2f}x SLO > {policy.slo_headroom:.2f}x"
            else:
                reason = f"queue depth {depth} > {live * batch}"
            self.fleet.add_replica(self.scale_spec, now_ms=now_ms, cold=True)
            event = ScaleEvent(now_ms, SCALE_UP, reason, live + 1)
        elif live > policy.min_replicas and (
            utilization < policy.utilization_low and p99_ratio <= 1.0 and depth == 0
        ):
            victim = self._scale_down_victim()
            self.fleet.remove_replica(victim.replica_id, now_ms=now_ms)
            event = ScaleEvent(
                now_ms,
                SCALE_DOWN,
                f"utilization {utilization:.2f} < {policy.utilization_low:.2f}",
                live - 1,
            )
        if event is not None:
            self.events.append(event)
            self._cooldown = policy.cooldown_ticks
            if self.obs is not None:
                self.obs.on_scale(event)
        return event

    def _scale_down_victim(self) -> Replica:
        """The replica to retire: emptiest queue, then newest."""
        return min(
            self.fleet.live_replicas(),
            key=lambda r: (r.engine.batcher.pending, -r.replica_id),
        )
