"""Columnar analytic fleet engine: 100M-request traces, byte-exact reports.

The event-loop runner (:func:`repro.fleet.runner.run_scenario` with
``analytic=True``) walks a Python object per arrival — allocation, dict
traffic, and interpreter dispatch dominate, capping throughput around a
million requests per half minute.  This module re-expresses the *same*
simulation over columns:

- the trace is numpy arrays (arrival times, bucket indices, per-request
  SLOs, tenant indices) straight from
  :meth:`~repro.fleet.scenarios.Scenario.generate_columns`;
- every service time a run can dispatch is a memoized per-(design point,
  bucket, batch size) price table
  (:func:`repro.serve.router.service_table`);
- replica state is a handful of scalars and tiny per-bucket FIFOs;
- the per-arrival decision sweep — project, admit or shed, enqueue,
  flush — runs either as a tight pure-Python loop over local lists or as
  a runtime-compiled C kernel (:mod:`repro.fleet._native`) that performs
  the identical IEEE-754 operations in the identical order.

**Exactness.** The sweep replicates the event-loop engine decision for
decision: admission projections accumulate queued-batch prices in bucket
first-use order, routing keeps the lowest-id replica on ties via a
strict ``<``, deadline flushes fire in ``(deadline, bucket)`` order with
the deadline as flush time, autoscaler signals read the same windows and
format the same reason strings, failovers migrate queues in enqueue
order.  Because every floating-point operation has the same operands in
the same order, reports are *byte-identical* to the event-loop analytic
(and therefore executed) mode — a property the differential test suite
asserts across every scenario class.

**Sharding.** A trace can be split on time boundaries into shards that
run independently and hand a compact, picklable
:class:`ColumnarFleetState` from one to the next; each shard emits a
:class:`ShardPartial` (its completions and sheds), and
:func:`merge_shard_partials` scatters them into the final columns.  The
split points are pure checkpoints of the same globally ordered event
sequence, so any shard count — and running each shard in a forked
subprocess — produces the same bytes, which the property tests check
for shard counts 1, 2, 5, and 7.
"""

from __future__ import annotations

import heapq
import math
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Set, Tuple, Union

import numpy as np

from ..serve.metrics import percentile
from ..serve.router import service_table
from .autoscale import SCALE_DOWN, SCALE_UP, AutoscalePolicy, ScaleEvent
from .chaos import (
    SHED_BREAKER,
    SHED_TIMEOUT,
    BrownoutLadder,
    ChaosPlan,
    ChaosStats,
    CircuitBreaker,
    GrayWindow,
    ResiliencePolicy,
    RetryBudget,
    backoff_delay_ms,
)
from .fleet import (
    SHED_NO_CAPACITY,
    SHED_OVERLOAD,
    FleetConfig,
    ReplicaSpec,
    reference_bucket,
)
from .metrics import build_fleet_stats_columns, build_replica_stats
from .runner import (
    _ARRIVAL,
    _FAIL,
    _GRAY_END,
    _GRAY_START,
    _RECOVER,
    _TICK,
    FailureEvent,
    FleetReport,
    control_events,
)
from .scenarios import (
    ColumnarTrace,
    FleetRequest,
    Scenario,
    _tune_malloc_for_giant_traces,
    builtin_scenarios,
)
from . import _native

# Shed codes in the completion columns (0 = completed).
SHED_CODE_OVERLOAD = 1
SHED_CODE_NO_CAPACITY = 2
SHED_CODE_BREAKER = 3
SHED_CODE_TIMEOUT = 4
SHED_REASON_OF_CODE = {
    SHED_CODE_OVERLOAD: SHED_OVERLOAD,
    SHED_CODE_NO_CAPACITY: SHED_NO_CAPACITY,
    SHED_CODE_BREAKER: SHED_BREAKER,
    SHED_CODE_TIMEOUT: SHED_TIMEOUT,
}


def native_available() -> bool:
    """Whether the compiled C sweep is usable in this process."""
    return _native.available()


# ----------------------------------------------------------------------
# state
# ----------------------------------------------------------------------
@dataclass
class _Rep:
    """One replica's complete simulation state (picklable)."""

    rid: int
    spec: ReplicaSpec
    added_ms: float
    busy_until: float = 0.0
    busy_ms: float = 0.0
    batches: int = 0
    requests: int = 0
    live: bool = True
    retired_ms: Optional[float] = None
    failures: int = 0
    downtime_ms: float = 0.0
    # down because of a fail-stop (vs scaled away) — recover guard,
    # mirroring Replica.failed
    failed: bool = False
    # gray-window service multiplier (DeviceRouter.slowdown's twin);
    # 1.0 costs no float op
    slowdown: float = 1.0
    # per-replica straggle detector when the resilience policy enables it
    breaker: Optional[CircuitBreaker] = None
    pending: int = 0
    # Per-bucket FIFO queues of (request index, enqueue ms); `order` lists
    # bucket slots in first-use order (the batcher's dict insertion order,
    # which fixes the float accumulation order of admission projections).
    queues: List[List[Tuple[int, float]]] = field(default_factory=list)
    order: List[int] = field(default_factory=list)
    seen: List[bool] = field(default_factory=list)
    next_dl: Optional[float] = None
    # (finish, engine latency) per completion in execution order; only
    # maintained when the autoscaler needs its window-p99 signal, pruned
    # to the unsampled suffix every tick.
    hist: Optional[List[Tuple[float, float]]] = None


@dataclass
class ColumnarFleetState:
    """Everything a shard hands to the next one (compact, picklable)."""

    replicas: List[_Rep] = field(default_factory=list)
    live: List[int] = field(default_factory=list)
    next_id: int = 0
    now: float = 0.0
    min_slo: Optional[float] = None
    migrations: int = 0
    # autoscaler state
    cooldown: int = 0
    last_tick: float = 0.0
    busy_snapshot: float = 0.0
    events: List[ScaleEvent] = field(default_factory=list)
    # chaos-layer state (rides the shard pickle like everything else)
    chaos: ChaosStats = field(default_factory=ChaosStats)
    budget: Optional[RetryBudget] = None
    brownout: Optional[BrownoutLadder] = None
    # scheduled backoff retries: min-heap of (due_ms, seq, idx, attempt);
    # seq increments in scheduling order, matching the event loop's
    # event-sequence numbering of _RETRY events (same relative order).
    retry_heap: List[Tuple[float, int, int, int]] = field(default_factory=list)
    retry_seq: int = 0
    # hedged pairs: (rid, request idx) -> (twin rid, shared bucket slot),
    # both directions, plus the set of primary keys (for hedge_wins).
    hedge: Dict[Tuple[int, int], Tuple[int, int]] = field(default_factory=dict)
    hedge_primary: Set[Tuple[int, int]] = field(default_factory=set)


@dataclass
class ShardPartial:
    """One shard's contribution to the final report: completions + sheds."""

    done_idx: np.ndarray    # int64 — request indices completed in this shard
    done_fin: np.ndarray    # float64 — their finish times
    shed_idx: np.ndarray    # int64 — request indices shed in this shard
    shed_code: np.ndarray   # uint8 — their shed codes

    @property
    def num_done(self) -> int:
        return int(self.done_idx.shape[0])

    @property
    def num_shed(self) -> int:
        return int(self.shed_idx.shape[0])


def merge_shard_partials(
    partials: Sequence[ShardPartial], num_requests: int
) -> Tuple[np.ndarray, np.ndarray]:
    """Scatter shard partials into full completion columns.

    Explicit about the degenerate cases the property tests pin: an empty
    partial list, empty shards, and all-shed shards all merge cleanly
    (the scatter of an empty index array is a no-op), and a request
    claimed by two shards — a drop/double-count bug — is detected and
    rejected rather than silently overwritten.

    Args:
        partials: Shard outputs, any order (indices are global).
        num_requests: Total submitted requests (column length).

    Returns:
        ``(finish_ms, shed_code)`` float64/uint8 columns; rows neither
        completed nor shed (impossible after a full run, possible for a
        prefix of shards) have ``shed_code == 0`` and ``finish_ms == 0``.

    Raises:
        ValueError: If any request index is out of range or claimed twice.
    """
    finish = np.zeros(num_requests, dtype=np.float64)
    shed = np.zeros(num_requests, dtype=np.uint8)
    claimed = np.zeros(num_requests, dtype=bool)
    total = 0
    for part in partials:
        for idx in (part.done_idx, part.shed_idx):
            if idx.shape[0] == 0:
                continue  # empty shard contribution — explicitly legal
            if int(idx.min()) < 0 or int(idx.max()) >= num_requests:
                raise ValueError("shard partial names an out-of-range request")
            claimed[idx] = True
            total += int(idx.shape[0])
        finish[part.done_idx] = part.done_fin
        shed[part.shed_idx] = part.shed_code
    # Overlap detection by counting: scattering `total` indices into a
    # clean mask marks `total` cells iff no index repeats — one O(n) sum
    # instead of a gather per partial, and it works on prefixes too.
    if int(claimed.sum()) != total:
        raise ValueError("shard partials overlap — a request was double-counted")
    return finish, shed


# ----------------------------------------------------------------------
# prepared run
# ----------------------------------------------------------------------
@dataclass
class _DesignTables:
    """Per-(design point) pricing: plain Python floats for the hot loop."""

    price_full: List[float]        # full-batch price per bucket slot
    ref_price: float               # price of the admission reference bucket
    svc: List[List[float]]         # [bucket slot][batch size] service ms
    cold_ms: float                 # cold-start window


@dataclass
class _Prepared:
    """One run's immutable inputs: trace columns, events, pricing."""

    name: str
    seed: int
    duration_ms: float
    tenant_names: List[str]
    tenant_idx: np.ndarray         # int64  [n]
    slo: np.ndarray                # float64 [n]
    uniform_slo: float             # the single SLO value, 0.0 when mixed
    arrival: np.ndarray            # float64 [n]
    bucket_idx: np.ndarray         # int32  [n]
    events: List[tuple]            # time-sorted control events
    specs: List[ReplicaSpec]
    config: FleetConfig
    autoscale: Optional[AutoscalePolicy]
    scale_spec: Optional[ReplicaSpec]
    model_config: object
    resilience: Optional[ResiliencePolicy] = None
    has_grays: bool = False          # any gray window in the event stream
    chaos_active: bool = False       # attach the report's chaos section

    @property
    def num_requests(self) -> int:
        return int(self.arrival.shape[0])


def _encode_length(tokenizer, text_a, text_b, max_seq_len: int) -> int:
    """True token count of one text pair — the engine's ``Encoding.length``."""
    _, mask, _ = tokenizer.encode(text_a, text_b, max_length=max_seq_len)
    return int(mask.sum())


def _prepare(
    scenario: Union[str, Scenario, ColumnarTrace, Sequence[FleetRequest]],
    model,
    tokenizer,
    specs: List[ReplicaSpec],
    fleet_config: FleetConfig,
    autoscale: Optional[AutoscalePolicy],
    scale_spec: Optional[ReplicaSpec],
    failures: Sequence[FailureEvent],
    seed: int,
    rate_scale: float,
    duration_scale: float,
    grays: Sequence[GrayWindow] = (),
    resilience: Optional[ResiliencePolicy] = None,
    chaos_active: bool = False,
) -> _Prepared:
    policy = fleet_config.serving
    if policy.max_seq_len > model.config.max_position_embeddings:
        raise ValueError(
            f"max_seq_len {policy.max_seq_len} exceeds the model's "
            f"max_position_embeddings {model.config.max_position_embeddings}"
        )
    if not specs:
        raise ValueError("a fleet needs at least one initial replica")

    if isinstance(scenario, str):
        catalog = builtin_scenarios()
        if scenario not in catalog:
            raise ValueError(
                f"unknown scenario {scenario!r}; choose from {sorted(catalog)}"
            )
        scenario = catalog[scenario]
    if isinstance(scenario, Scenario):
        scenario = scenario.generate_columns(
            seed=seed, rate_scale=rate_scale, duration_scale=duration_scale
        )

    if isinstance(scenario, ColumnarTrace):
        cols = scenario
        # A prebuilt giant trace skipped generate_columns' allocator
        # tuning; the sweep/merge columns downstream churn just as much.
        _tune_malloc_for_giant_traces(cols.num_requests)
        name = cols.name
        seed = cols.seed  # the trace knows the seed it was generated with
        duration_ms = cols.duration_ms
        tenant_names = [t.name for t in cols.tenants]
        if len(set(tenant_names)) != len(tenant_names):
            raise ValueError("tenant names must be unique")
        tenant_idx = cols.tenant_idx
        tenant_slos = np.asarray(
            [t.slo_ms for t in cols.tenants], dtype=np.float64
        )
        if len(cols.tenants) == 1:
            # One tenant: the gather below would broadcast one value.
            slo = np.full(cols.num_requests, tenant_slos[0], dtype=np.float64)
        else:
            slo = tenant_slos[tenant_idx]
        # Bucketing is a pure function of the text, and every text comes
        # from a small per-tenant pool — so tokenize and bucket each pool
        # entry once, then gather per-request bucket indices through a
        # flattened pool table.  One integer gather over the trace instead
        # of a 100M-row tokenize + searchsorted.
        batching = policy.batching_policy()
        pool_buckets = [
            batching.bucket_indices(
                np.asarray(
                    [
                        _encode_length(tokenizer, text, None, policy.max_seq_len)
                        for text in pool
                    ],
                    dtype=np.int64,
                )
            ).astype(np.int32)
            for pool in cols.pools()
        ]
        if len(pool_buckets) == 1:
            bucket_idx = pool_buckets[0][cols.draw]
        else:
            offsets = np.zeros(len(pool_buckets), dtype=np.int64)
            for tid in range(1, len(pool_buckets)):
                offsets[tid] = offsets[tid - 1] + pool_buckets[tid - 1].shape[0]
            flat = np.concatenate(pool_buckets)
            bucket_idx = flat[offsets[tenant_idx] + cols.draw]
        arrival = cols.arrival_ms
        uniform_slo = (
            float(tenant_slos[0]) if np.unique(tenant_slos).size == 1 else 0.0
        )
    else:
        # A pre-built FleetRequest trace (the runner's third input form).
        trace = sorted(scenario, key=lambda r: r.arrival_ms)
        name = "custom-trace"
        duration_ms = trace[-1].arrival_ms if trace else 0.0
        tenant_names = []
        tid_of: Dict[str, int] = {}
        length_of: Dict[Tuple[str, Optional[str]], int] = {}
        n = len(trace)
        tenant_idx = np.empty(n, dtype=np.int64)
        slo = np.empty(n, dtype=np.float64)
        arrival = np.empty(n, dtype=np.float64)
        lengths = np.empty(n, dtype=np.int64)
        for i, request in enumerate(trace):
            tid = tid_of.get(request.tenant)
            if tid is None:
                tid = tid_of[request.tenant] = len(tenant_names)
                tenant_names.append(request.tenant)
            tenant_idx[i] = tid
            slo[i] = request.slo_ms
            arrival[i] = request.arrival_ms
            key = (request.text_a, request.text_b)
            length = length_of.get(key)
            if length is None:
                length = length_of[key] = _encode_length(
                    tokenizer, request.text_a, request.text_b, policy.max_seq_len
                )
            lengths[i] = length
        bucket_idx = (
            policy.batching_policy().bucket_indices(lengths).astype(np.int32)
        )
        del lengths
        uniform_slo = (
            float(slo[0]) if n and bool((slo == slo[0]).all()) else 0.0
        )

    events = sorted(
        control_events(
            duration_ms,
            autoscale,
            failures,
            first_seq=arrival.shape[0],
            grays=grays,
        ),
        key=lambda e: (e[0], e[1], e[2]),
    )
    return _Prepared(
        name=name,
        seed=seed,
        duration_ms=duration_ms,
        tenant_names=tenant_names,
        tenant_idx=tenant_idx,
        slo=slo,
        uniform_slo=uniform_slo,
        arrival=arrival,
        bucket_idx=bucket_idx,
        events=events,
        specs=list(specs),
        config=fleet_config,
        autoscale=autoscale,
        scale_spec=scale_spec,
        model_config=model.config,
        resilience=resilience,
        has_grays=bool(grays),
        chaos_active=chaos_active,
    )


# ----------------------------------------------------------------------
# the engine
# ----------------------------------------------------------------------
class _Accum:
    """Per-shard completion/shed accumulator (arrays and lists mix)."""

    def __init__(self):
        self.done_idx_py: List[int] = []
        self.done_fin_py: List[float] = []
        self.done_parts: List[Tuple[np.ndarray, np.ndarray]] = []
        self.shed_idx_py: List[int] = []
        self.shed_code_py: List[int] = []
        self.shed_parts: List[Tuple[np.ndarray, np.ndarray]] = []

    def to_partial(self) -> ShardPartial:
        done_idx = [np.asarray(self.done_idx_py, dtype=np.int64)]
        done_fin = [np.asarray(self.done_fin_py, dtype=np.float64)]
        for idx, fin in self.done_parts:
            done_idx.append(idx)
            done_fin.append(fin)
        shed_idx = [np.asarray(self.shed_idx_py, dtype=np.int64)]
        shed_code = [np.asarray(self.shed_code_py, dtype=np.uint8)]
        for idx, code in self.shed_parts:
            shed_idx.append(idx)
            shed_code.append(code.astype(np.uint8))
        return ShardPartial(
            done_idx=np.concatenate(done_idx) if len(done_idx) > 1 else done_idx[0],
            done_fin=np.concatenate(done_fin) if len(done_fin) > 1 else done_fin[0],
            shed_idx=np.concatenate(shed_idx) if len(shed_idx) > 1 else shed_idx[0],
            shed_code=(
                np.concatenate(shed_code) if len(shed_code) > 1 else shed_code[0]
            ),
        )


class ColumnarFleetEngine:
    """The columnar twin of :class:`~repro.fleet.fleet.Fleet` + runner."""

    def __init__(
        self,
        prep: _Prepared,
        use_native: Optional[bool] = None,
        obs=None,
    ):
        self.prep = prep
        # Observability sink (repro.obs.FleetObserver) or None.  Falsy
        # sinks normalize to None so the sweeps stay seam-free when off.
        self.obs = obs or None
        policy = prep.config.serving
        self.B = len(policy.buckets)
        self.M = policy.max_batch_size
        self.wait = policy.max_wait_ms
        self.factor = prep.config.admit_slo_factor
        self.bucket_values = list(policy.buckets)
        self.ref_idx = self.bucket_values.index(reference_bucket(policy.buckets))
        self.track_hist = prep.autoscale is not None
        self.resilience = prep.resilience
        self.resilient = (
            prep.resilience is not None and prep.resilience.enabled
        )
        self._hedging = self.resilient and prep.resilience.hedge
        # The per-arrival resilient path needs the live state from inside
        # _flush (hedge cancellation, breaker telemetry); the engine
        # stashes the current state here for the duration of a window.
        self._cur_state: Optional[ColumnarFleetState] = None
        self._tables: Dict[Tuple[object, object], _DesignTables] = {}
        if use_native is None:
            use_native = _native.available()
        # The C kernel covers the arrival sweep only; the autoscaler's
        # history bookkeeping keeps those runs on the (still exact)
        # Python sweep.  Gray windows stretch realized service inside the
        # flush, which the kernel does not model — they force the (still
        # exact) Python sweep too.
        self.use_native = (
            bool(use_native) and _native.available() and not prep.has_grays
        )
        # Global scratch for the native kernel (allocated lazily).
        self._finish_scratch: Optional[np.ndarray] = None
        self._shed_scratch: Optional[np.ndarray] = None
        self._arr32: Optional[np.ndarray] = None

    # ------------------------------------------------------------------
    # pricing
    # ------------------------------------------------------------------
    def tables_for(self, spec: ReplicaSpec) -> _DesignTables:
        key = (spec.accel_config, spec.device)
        tables = self._tables.get(key)
        if tables is None:
            policy = self.prep.config.serving
            table = service_table(
                self.prep.model_config,
                spec.accel_config,
                spec.device,
                policy.buckets,
                self.M,
            )
            svc = table.tolist()
            price_full = [row[self.M] for row in svc]
            tables = self._tables[key] = _DesignTables(
                price_full=price_full,
                ref_price=price_full[self.ref_idx],
                svc=svc,
                cold_ms=self.prep.config.cold_start_batches * svc[self.B - 1][self.M],
            )
        return tables

    # ------------------------------------------------------------------
    # state lifecycle (mirrors Fleet.add/fail/recover/remove)
    # ------------------------------------------------------------------
    def initial_state(self) -> ColumnarFleetState:
        state = ColumnarFleetState()
        policy = self.prep.resilience
        if policy is not None:
            state.budget = RetryBudget.from_policy(policy)
            if policy.brownout:
                state.brownout = BrownoutLadder.from_policy(policy)
        for spec in self.prep.specs:
            self._add_replica(state, spec, now=0.0, cold=False)
        # Autoscaler construction snapshots total busy time (zero at t=0).
        state.busy_snapshot = 0.0
        return state

    def _add_replica(
        self, state: ColumnarFleetState, spec: ReplicaSpec, now: float, cold: bool
    ) -> _Rep:
        tables = self.tables_for(spec)
        rep = _Rep(
            rid=state.next_id,
            spec=spec,
            added_ms=now,
            # engine starts idle; a cold start blocks the device until
            # now + cold_ms (router.block_until's max against zero).
            busy_until=(now + tables.cold_ms) if cold else 0.0,
            queues=[[] for _ in range(self.B)],
            seen=[False] * self.B,
            hist=[] if self.track_hist else None,
        )
        policy = self.prep.resilience
        if policy is not None and policy.breaker:
            rep.breaker = CircuitBreaker.from_policy(policy)
        state.next_id += 1
        state.replicas.append(rep)
        self._rebuild_live(state)
        if self.obs is not None:
            self.obs.on_replica(
                rep.rid, spec.label, now, tables.cold_ms if cold else 0.0
            )
        return rep

    @staticmethod
    def _rebuild_live(state: ColumnarFleetState) -> None:
        state.live = [r.rid for r in state.replicas if r.live]

    def _fail(self, state: ColumnarFleetState, rid: int, now: float, acc: _Accum):
        rep = state.replicas[rid] if rid < len(state.replicas) else None
        if rep is None or not rep.live:
            return  # unknown or already down — no-op, like Fleet.fail_replica
        rep.live = False
        rep.retired_ms = now
        rep.failures += 1
        rep.failed = True
        self._rebuild_live(state)
        if self.obs is not None:
            self.obs.on_failure(rep.rid, now)
        self._migrate(state, rep, now, acc)

    def _recover(self, state: ColumnarFleetState, rid: int, now: float):
        # Same down-cause guard as Fleet.recover_replica: only a replica
        # that is down *because it failed* comes back; one the autoscaler
        # scaled away while down stays retired (see the fleet docstring
        # contract and tests/fleet/test_chaos.py).
        rep = state.replicas[rid] if rid < len(state.replicas) else None
        if rep is None or rep.live or not rep.failed:
            return
        rep.failed = False
        cold = self.tables_for(rep.spec).cold_ms
        rep.busy_until = max(rep.busy_until, now + cold)
        if self.obs is not None:
            self.obs.on_recovery(rep.rid, now, cold)
        rep.live = True
        if rep.retired_ms is not None:
            rep.downtime_ms += now - rep.retired_ms
        rep.retired_ms = None
        self._rebuild_live(state)

    def _remove(self, state: ColumnarFleetState, rep: _Rep, now: float, acc: _Accum):
        rep.live = False
        rep.retired_ms = now
        self._rebuild_live(state)
        self._migrate(state, rep, now, acc)

    # ------------------------------------------------------------------
    # per-replica primitives (mirror DynamicBatcher + engine dispatch)
    # ------------------------------------------------------------------
    def _projection(self, rep: _Rep, now: float) -> float:
        backlog = rep.busy_until - now
        if backlog < 0.0:
            backlog = 0.0
        queued = 0.0
        M = self.M
        tables = self.tables_for(rep.spec)
        price = tables.price_full
        for b in rep.order:
            depth = len(rep.queues[b])
            if depth:
                queued += ((depth + M - 1) // M) * price[b]
        return backlog + queued + tables.ref_price + self.wait

    def _flush(self, rep: _Rep, b: int, flush_ms: float, acc: _Accum) -> None:
        queue = rep.queues[b]
        take = min(len(queue), self.M)
        requests, rep.queues[b] = queue[:take], queue[take:]
        rep.pending -= take
        # `nominal` is the memoized simulator price (the router estimate);
        # a gray window stretches the *realized* service exactly like
        # DeviceRouter.dispatch — same multiply, same operands.
        nominal = self.tables_for(rep.spec).svc[b][take]
        service = nominal if rep.slowdown == 1.0 else nominal * rep.slowdown
        start = flush_ms if flush_ms > rep.busy_until else rep.busy_until
        fin = start + service
        rep.busy_until = fin
        rep.busy_ms += service
        rep.batches += 1
        rep.requests += take
        done_idx = acc.done_idx_py
        done_fin = acc.done_fin_py
        hist = rep.hist
        for idx, enq in requests:
            done_idx.append(idx)
            done_fin.append(fin)
            if hist is not None:
                hist.append((fin, fin - enq))
        obs = self.obs
        if obs is not None:
            arrival = self.prep.arrival
            slo = self.prep.slo
            latencies = []
            met = 0
            # Worst-request critical path, same multiset min/max as the
            # event-loop hook: arr is the fleet arrival column, enq the
            # queue tuple's enqueue time — identical IEEE operands.
            worst_arr = worst_enq = float("inf")
            last_enq = float("-inf")
            for idx, enq in requests:
                arr = float(arrival[idx])
                lat = fin - arr
                latencies.append(lat)
                if lat <= float(slo[idx]):
                    met += 1
                if arr < worst_arr or (arr == worst_arr and enq < worst_enq):
                    worst_arr = arr
                    worst_enq = enq
                if enq > last_enq:
                    last_enq = enq
            obs.on_batch((
                rep.rid, self.bucket_values[b], take, start, service,
                fin - worst_arr, worst_enq - worst_arr,
                last_enq - worst_enq, start - last_enq,
            ))
            obs.on_completions(fin, latencies, met)
        # Same consumer order as Fleet._install_batch_hook: observer,
        # then circuit breaker, then hedge cancellation.
        breaker = rep.breaker
        if breaker is not None:
            transition = breaker.observe(
                fin,
                service > self.resilience.breaker_straggle_factor * nominal,
            )
            # opens/closes roll up from the breakers at finalize (the
            # live counters the event loop keeps are the same sums).
            if transition is not None and obs is not None:
                obs.on_breaker(rep.rid, fin, transition)
        if self._hedging:
            state = self._cur_state
            for idx, _enq in requests:
                key = (rep.rid, idx)
                twin = state.hedge.pop(key, None)
                if twin is None:
                    continue
                twin_rid, twin_b = twin
                del state.hedge[(twin_rid, idx)]
                # cancel the still-queued twin copy (DynamicBatcher.cancel)
                twin_rep = state.replicas[twin_rid]
                twin_q = twin_rep.queues[twin_b]
                pos = -1
                for j, (qidx, _qenq) in enumerate(twin_q):
                    if qidx == idx:
                        pos = j
                        break
                if pos < 0:
                    raise RuntimeError(
                        f"hedged twin of request {idx} on replica "
                        f"{twin_rid} was not cancellable — hedge "
                        f"bookkeeping out of sync"
                    )
                del twin_q[pos]
                twin_rep.pending -= 1
                if pos == 0:
                    nd = None
                    wait = self.wait
                    for b2 in twin_rep.order:
                        q = twin_rep.queues[b2]
                        if q:
                            cand = q[0][1] + wait
                            if nd is None or cand < nd:
                                nd = cand
                    twin_rep.next_dl = nd
                if key in state.hedge_primary:
                    state.hedge_primary.discard(key)
                else:
                    state.chaos.hedge_wins += 1
                    state.hedge_primary.discard((twin_rid, idx))
        # recompute the earliest pending deadline (batcher invariant)
        nd = None
        wait = self.wait
        for b2 in rep.order:
            q = rep.queues[b2]
            if q:
                cand = q[0][1] + wait
                if nd is None or cand < nd:
                    nd = cand
        rep.next_dl = nd

    def _fire_dues(self, rep: _Rep, now: float, acc: _Accum) -> None:
        """``DynamicBatcher.due_batches``: collect, sort, flush at deadlines."""
        if rep.next_dl is None or now < rep.next_dl:
            return
        wait = self.wait
        values = self.bucket_values
        due = []
        for b in rep.order:
            q = rep.queues[b]
            if q:
                deadline = q[0][1] + wait
                if deadline <= now:
                    due.append((deadline, values[b], b))
        due.sort()
        for deadline, _, b in due:
            self._flush(rep, b, deadline, acc)

    def _enqueue(
        self, rep: _Rep, b: int, idx: int, now: float, acc: _Accum
    ) -> bool:
        """Enqueue one request; returns True when it flushed on the spot.

        The return value mirrors the event loop's ``engine_rid not in
        engine.results`` probe after submit: a full batch flushes inside
        the enqueue and executes the request immediately (hedging only
        duplicates requests that are still queued).
        """
        queue = rep.queues[b]
        queue.append((idx, now))
        rep.pending += 1
        if len(queue) == 1:
            if not rep.seen[b]:
                rep.seen[b] = True
                rep.order.append(b)
            deadline = now + self.wait
            if rep.next_dl is None or deadline < rep.next_dl:
                rep.next_dl = deadline
        if len(queue) >= self.M:
            self._flush(rep, b, now, acc)
            return True
        return False

    def _advance(self, state: ColumnarFleetState, now: float, acc: _Accum) -> None:
        """``Fleet.advance``: fire due deadlines on live replicas, id order."""
        for rid in state.live:
            rep = state.replicas[rid]
            if rep.next_dl is not None and rep.next_dl <= now:
                self._fire_dues(rep, now, acc)
        if now > state.now:
            state.now = now

    def _migrate(
        self, state: ColumnarFleetState, rep: _Rep, now: float, acc: _Accum
    ) -> None:
        """``Fleet._migrate_pending``: evict in enqueue order, resubmit at now."""
        evicted: List[Tuple[int, float, int]] = []
        for b in rep.order:
            queue = rep.queues[b]
            if queue:
                evicted.extend((idx, enq, b) for idx, enq in queue)
                queue.clear()
        if not evicted:
            rep.pending = 0
            rep.next_dl = None
            return
        rep.pending = 0
        rep.next_dl = None
        evicted.sort(key=lambda e: e[1])  # stable, like evict_all
        replicas = state.replicas
        hedging = self._hedging
        for idx, _enq, b in evicted:
            if hedging:
                twin = state.hedge.pop((rep.rid, idx), None)
                if twin is not None:
                    # One copy of a hedged pair was queued here; the twin
                    # (still queued elsewhere) carries the request alone —
                    # drop this copy instead of migrating it, exactly like
                    # Fleet._migrate_pending.
                    del state.hedge[(twin[0], idx)]
                    state.hedge_primary.discard((rep.rid, idx))
                    state.hedge_primary.discard((twin[0], idx))
                    continue
            survivors = state.live
            if not survivors:
                acc.shed_idx_py.append(idx)
                acc.shed_code_py.append(SHED_CODE_NO_CAPACITY)
                if self.obs is not None:
                    # Bucketed at migration time, like Fleet._migrate_pending.
                    self.obs.on_shed(now, SHED_NO_CAPACITY)
                continue
            best = None
            best_key = None
            for rid in survivors:
                candidate = replicas[rid]
                key = (self._projection(candidate, now), rid)
                if best is None or key < best_key:
                    best = candidate
                    best_key = key
            # engine.submit fires the target's due deadlines at `now`
            # before enqueueing (matters when max_wait_ms == 0).
            self._fire_dues(best, now, acc)
            self._enqueue(best, b, idx, now, acc)
            state.migrations += 1

    # ------------------------------------------------------------------
    # autoscaler tick (mirrors Autoscaler.tick)
    # ------------------------------------------------------------------
    def _tick(self, state: ColumnarFleetState, now: float, acc: _Accum) -> None:
        policy = self.prep.autoscale
        replicas = state.replicas
        live_n = len(state.live)
        window = now - state.last_tick
        total_busy = 0.0
        for rep in replicas:  # creation order == id order, like _total_busy_ms
            total_busy += rep.busy_ms
        if window <= 0 or live_n == 0:
            utilization = 0.0
        else:
            utilization = min(
                1.0, (total_busy - state.busy_snapshot) / (window * live_n)
            )
        samples: List[float] = []
        for rep in replicas:
            hist = rep.hist
            if hist:
                last = state.last_tick
                for fin, lat in hist:
                    if fin <= last:
                        continue
                    if fin <= now:
                        samples.append(lat)
        if not samples:
            p99_ratio = 0.0
        else:
            floor = state.min_slo
            p99_ratio = 0.0 if not floor else percentile(samples, 99) / floor
        depth = 0
        for rid in state.live:
            depth += replicas[rid].pending
        if self.obs is not None:
            # Same floats as Autoscaler.tick: busy/window accounting and the
            # sorted-percentile p99 are order-insensitive, so the counter
            # track is byte-identical across engines.
            self.obs.on_tick(now, utilization, p99_ratio, depth)
        state.last_tick = now
        state.busy_snapshot = total_busy
        # prune sampled history: entries finishing at or before this tick
        # can never be sampled again (finish times are non-decreasing).
        for rep in replicas:
            hist = rep.hist
            if hist:
                cut = 0
                for fin, _ in hist:
                    if fin <= now:
                        cut += 1
                    else:
                        break
                if cut:
                    del hist[:cut]

        if state.cooldown > 0:
            state.cooldown -= 1
            return
        batch = self.M
        event: Optional[ScaleEvent] = None
        if live_n < policy.max_replicas and (
            utilization > policy.utilization_high
            or p99_ratio > policy.slo_headroom
            or depth > live_n * batch
        ):
            if utilization > policy.utilization_high:
                reason = (
                    f"utilization {utilization:.2f} > {policy.utilization_high:.2f}"
                )
            elif p99_ratio > policy.slo_headroom:
                reason = f"p99 {p99_ratio:.2f}x SLO > {policy.slo_headroom:.2f}x"
            else:
                reason = f"queue depth {depth} > {live_n * batch}"
            scale_spec = self.prep.scale_spec or replicas[0].spec
            self._add_replica(state, scale_spec, now=now, cold=True)
            event = ScaleEvent(now, SCALE_UP, reason, live_n + 1)
        elif live_n > policy.min_replicas and (
            utilization < policy.utilization_low
            and p99_ratio <= 1.0
            and depth == 0
        ):
            victim = min(
                (replicas[rid] for rid in state.live),
                key=lambda r: (r.pending, -r.rid),
            )
            self._remove(state, victim, now, acc)
            event = ScaleEvent(
                now,
                SCALE_DOWN,
                f"utilization {utilization:.2f} < {policy.utilization_low:.2f}",
                live_n - 1,
            )
        if event is not None:
            state.events.append(event)
            state.cooldown = policy.cooldown_ticks
            if self.obs is not None:
                self.obs.on_scale(event)

    # ------------------------------------------------------------------
    # arrival sweeps
    # ------------------------------------------------------------------
    def _run_arrivals(
        self, state: ColumnarFleetState, lo: int, hi: int, acc: _Accum
    ) -> None:
        if hi <= lo:
            return
        if self.resilient:
            # The resilient admission path is inherently per-arrival
            # (breaker probes, brownout hysteresis, retries racing the
            # trace) — and even the no-live-replica case must route
            # through it so sheds can become scheduled retries.
            self._run_arrivals_resilient(state, lo, hi, acc)
            return
        if not state.live:
            # No live replica: every arrival sheds with no-capacity, and
            # with no queues there are no deadlines to fire (vectorized).
            acc.shed_parts.append(
                (
                    np.arange(lo, hi, dtype=np.int64),
                    np.full(hi - lo, SHED_CODE_NO_CAPACITY, dtype=np.uint8),
                )
            )
            if self.obs is not None:
                window = self.prep.arrival[lo:hi]
                self.obs.on_arrivals(window)
                self.obs.on_sheds(window, SHED_NO_CAPACITY)
            if state.min_slo is None:
                pass  # min_accepted_slo only updates on admission
            state.now = max(state.now, float(self.prep.arrival[hi - 1]))
            return
        # The C kernel has no observability seams; an attached observer
        # forces the (byte-identical) Python sweep, like track_hist does.
        if self.use_native and not self.track_hist and self.obs is None:
            self._run_arrivals_native(state, lo, hi, acc)
        else:
            self._run_arrivals_python(state, lo, hi, acc)
        state.now = max(state.now, float(self.prep.arrival[hi - 1]))
        # min_accepted_slo: tightest SLO among *accepted* requests.  The
        # sweep records sheds, so accepted = range minus sheds; taking the
        # running min of accepted SLOs in order equals the event loop's
        # incremental update.
        self._update_min_slo(state, lo, hi, acc)

    def _update_min_slo(
        self, state: ColumnarFleetState, lo: int, hi: int, acc: _Accum
    ) -> None:
        if not self.track_hist and self.prep.autoscale is None:
            # min_accepted_slo only feeds the autoscaler's p99 floor; skip
            # the bookkeeping entirely on fixed fleets.
            return
        slo = self.prep.slo
        shed_in_range = set()
        for idx in acc.shed_idx_py:
            if lo <= idx < hi:
                shed_in_range.add(idx)
        for idx_arr, _ in acc.shed_parts:
            if idx_arr.shape[0]:
                in_range = idx_arr[(idx_arr >= lo) & (idx_arr < hi)]
                shed_in_range.update(int(x) for x in in_range)
        current = state.min_slo
        for i in range(lo, hi):
            if i in shed_in_range:
                continue
            value = float(slo[i])
            if current is None or value < current:
                current = value
        state.min_slo = current

    def _run_arrivals_python(
        self, state: ColumnarFleetState, lo: int, hi: int, acc: _Accum
    ) -> None:
        """The pure-Python sweep: exact event-loop semantics on local lists."""
        replicas = state.replicas
        live = state.live
        lreps = [replicas[rid] for rid in live]
        L = len(lreps)
        M = self.M
        wait = self.wait
        factor = self.factor
        values = self.bucket_values
        inf = math.inf
        busy_until = [r.busy_until for r in lreps]
        busy_ms = [r.busy_ms for r in lreps]
        batches = [r.batches for r in lreps]
        served = [r.requests for r in lreps]
        queues = [r.queues for r in lreps]          # shared mutable lists
        order = [r.order for r in lreps]            # shared mutable lists
        seen = [r.seen for r in lreps]
        next_dl = [inf if r.next_dl is None else r.next_dl for r in lreps]
        tabs = [self.tables_for(r.spec) for r in lreps]
        price = [t.price_full for t in tabs]
        ref = [t.ref_price for t in tabs]
        svc = [t.svc for t in tabs]
        # Gray-window multipliers are control-event state: they can only
        # change between sweeps, so a local snapshot is exact.
        slows = [r.slowdown for r in lreps]
        hists = [r.hist for r in lreps]
        done_idx = acc.done_idx_py
        done_fin = acc.done_fin_py
        shed_idx = acc.shed_idx_py
        shed_code = acc.shed_code_py
        obs = self.obs
        rids = [r.rid for r in lreps]
        arrival_col = self.prep.arrival
        slo_col = self.prep.slo

        def flush(k: int, b: int, flush_ms: float) -> None:
            queue = queues[k][b]
            take = len(queue) if len(queue) < M else M
            requests, queues[k][b] = queue[:take], queue[take:]
            service = svc[k][b][take]
            if slows[k] != 1.0:
                service = service * slows[k]
            bu = busy_until[k]
            start = flush_ms if flush_ms > bu else bu
            fin = start + service
            busy_until[k] = fin
            busy_ms[k] += service
            batches[k] += 1
            served[k] += take
            hist = hists[k]
            for idx, enq in requests:
                done_idx.append(idx)
                done_fin.append(fin)
                if hist is not None:
                    hist.append((fin, fin - enq))
            if obs is not None:
                latencies = []
                met = 0
                worst_arr = worst_enq = inf
                last_enq = -inf
                for idx, enq in requests:
                    arr = float(arrival_col[idx])
                    lat = fin - arr
                    latencies.append(lat)
                    if lat <= float(slo_col[idx]):
                        met += 1
                    if arr < worst_arr or (arr == worst_arr and enq < worst_enq):
                        worst_arr = arr
                        worst_enq = enq
                    if enq > last_enq:
                        last_enq = enq
                obs.on_batch((
                    rids[k], values[b], take, start, service,
                    fin - worst_arr, worst_enq - worst_arr,
                    last_enq - worst_enq, start - last_enq,
                ))
                obs.on_completions(fin, latencies, met)
            nd = inf
            q_k = queues[k]
            for b2 in order[k]:
                q = q_k[b2]
                if q:
                    cand = q[0][1] + wait
                    if cand < nd:
                        nd = cand
            next_dl[k] = nd

        def fire_dues(k: int, now: float) -> None:
            due = []
            q_k = queues[k]
            for b in order[k]:
                q = q_k[b]
                if q:
                    deadline = q[0][1] + wait
                    if deadline <= now:
                        due.append((deadline, values[b], b))
            due.sort()
            for deadline, _, b in due:
                flush(k, b, deadline)

        if obs is not None and hi > lo:
            # Bulk-record the span's arrivals upfront — the same move the
            # event-loop runner makes over the whole trace.  Watermark-safe:
            # recording early only makes records available sooner than any
            # flush that could close their window.
            obs.on_arrivals(arrival_col[lo:hi])

        g = min(next_dl) if next_dl else inf
        step = 1 << 20
        pos = lo
        while pos < hi:
            end = min(pos + step, hi)
            ts = self.prep.arrival[pos:end].tolist()
            bs = self.prep.bucket_idx[pos:end].tolist()
            ss = self.prep.slo[pos:end].tolist()
            for k2 in range(end - pos):
                t = ts[k2]
                if t >= g:
                    for k in range(L):
                        if next_dl[k] <= t:
                            fire_dues(k, t)
                    g = min(next_dl)
                # admission projection, strict < keeps lowest id on ties
                best = 0
                bestp = 0.0
                for k in range(L):
                    backlog = busy_until[k] - t
                    if backlog < 0.0:
                        backlog = 0.0
                    queued = 0.0
                    price_k = price[k]
                    q_k = queues[k]
                    for b in order[k]:
                        depth = len(q_k[b])
                        if depth:
                            queued += ((depth + M - 1) // M) * price_k[b]
                    proj = backlog + queued + ref[k] + wait
                    if k == 0 or proj < bestp:
                        bestp = proj
                        best = k
                i = pos + k2
                if bestp > factor * ss[k2]:
                    shed_idx.append(i)
                    shed_code.append(SHED_CODE_OVERLOAD)
                    if obs is not None:
                        obs.on_shed(t, SHED_OVERLOAD)
                    continue
                b = bs[k2]
                queue = queues[best][b]
                queue.append((i, t))
                if len(queue) == 1:
                    if not seen[best][b]:
                        seen[best][b] = True
                        order[best].append(b)
                    deadline = t + wait
                    if deadline < next_dl[best]:
                        next_dl[best] = deadline
                        if deadline < g:
                            g = deadline
                if len(queue) >= M:
                    flush(best, b, t)
                    g = min(next_dl)
            pos = end

        for k, rep in enumerate(lreps):
            rep.busy_until = busy_until[k]
            rep.busy_ms = busy_ms[k]
            rep.batches = batches[k]
            rep.requests = served[k]
            rep.next_dl = None if next_dl[k] == inf else next_dl[k]
            rep.pending = sum(len(q) for q in queues[k])

    def _run_arrivals_native(
        self, state: ColumnarFleetState, lo: int, hi: int, acc: _Accum
    ) -> None:
        """Pack state, run the C kernel, unpack — identical decisions."""
        lib = _native.load()
        replicas = state.replicas
        live = state.live
        lreps = [replicas[rid] for rid in live]
        L = len(lreps)
        B = self.B
        M = self.M
        n = self.prep.num_requests
        if self._finish_scratch is None:
            self._finish_scratch = np.zeros(n, dtype=np.float64)
            self._shed_scratch = np.zeros(n, dtype=np.uint8)
        if self._arr32 is None:
            self._arr32 = self.prep.bucket_idx  # already int32

        busy_until = np.array([r.busy_until for r in lreps], dtype=np.float64)
        busy_ms = np.array([r.busy_ms for r in lreps], dtype=np.float64)
        batches = np.array([r.batches for r in lreps], dtype=np.int64)
        served = np.array([r.requests for r in lreps], dtype=np.int64)
        tabs = [self.tables_for(r.spec) for r in lreps]
        price_full = np.array([t.price_full for t in tabs], dtype=np.float64)
        ref_price = np.array([t.ref_price for t in tabs], dtype=np.float64)
        svc = np.array([t.svc for t in tabs], dtype=np.float64)
        depth = np.zeros((L, B), dtype=np.int32)
        qidx = np.zeros((L, B, M), dtype=np.int64)
        qenq = np.zeros((L, B, M), dtype=np.float64)
        seen = np.zeros((L, B), dtype=np.uint8)
        order = np.zeros((L, B), dtype=np.int32)
        order_n = np.zeros(L, dtype=np.int32)
        next_dl = np.full(L, np.inf, dtype=np.float64)
        for k, rep in enumerate(lreps):
            for j, b in enumerate(rep.order):
                order[k, j] = b
            order_n[k] = len(rep.order)
            for b in range(B):
                if rep.seen[b]:
                    seen[k, b] = 1
                queue = rep.queues[b]
                depth[k, b] = len(queue)
                for j, (idx, enq) in enumerate(queue):
                    qidx[k, b, j] = idx
                    qenq[k, b, j] = enq
            if rep.next_dl is not None:
                next_dl[k] = rep.next_dl
        carried = int(depth.sum())
        done_log = np.empty((hi - lo) + carried + 8, dtype=np.int64)
        done_n = np.zeros(1, dtype=np.int64)
        bucket_value = np.array(self.bucket_values, dtype=np.int64)
        due_dl = np.empty(B, dtype=np.float64)
        due_bv = np.empty(B, dtype=np.int64)
        due_b = np.empty(B, dtype=np.int64)

        lib.arrival_run(
            lo, hi,
            self.prep.arrival, self.prep.bucket_idx, self.prep.slo,
            L, B, M,
            self.wait, self.factor, self.prep.uniform_slo,
            busy_until, busy_ms, batches, served,
            price_full.reshape(-1), ref_price, svc.reshape(-1),
            depth.reshape(-1), qidx.reshape(-1), qenq.reshape(-1),
            seen.reshape(-1), order.reshape(-1), order_n,
            next_dl, bucket_value,
            self._shed_scratch, self._finish_scratch,
            done_log, done_n,
            due_dl, due_bv, due_b,
        )

        count = int(done_n[0])
        done = done_log[:count].copy()
        acc.done_parts.append((done, self._finish_scratch[done]))
        window = self._shed_scratch[lo:hi]
        nz = np.flatnonzero(window)
        if nz.shape[0]:
            acc.shed_parts.append(
                ((nz + lo).astype(np.int64), window[nz].copy())
            )
        for k, rep in enumerate(lreps):
            rep.busy_until = float(busy_until[k])
            rep.busy_ms = float(busy_ms[k])
            rep.batches = int(batches[k])
            rep.requests = int(served[k])
            rep.order = [int(b) for b in order[k, : int(order_n[k])]]
            rep.seen = [bool(seen[k, b]) for b in range(B)]
            rep.queues = [
                [
                    (int(qidx[k, b, j]), float(qenq[k, b, j]))
                    for j in range(int(depth[k, b]))
                ]
                for b in range(B)
            ]
            rep.pending = int(depth[k].sum())
            nd = float(next_dl[k])
            rep.next_dl = None if math.isinf(nd) else nd

    # ------------------------------------------------------------------
    # resilient request path (chaos layer) — mirrors Fleet._attempt
    # ------------------------------------------------------------------
    def _run_arrivals_resilient(
        self, state: ColumnarFleetState, lo: int, hi: int, acc: _Accum
    ) -> None:
        """Per-arrival resilient sweep, retries interleaved on the clock.

        A retry due strictly before an arrival fires first; one due at
        the same instant fires after every arrival of that instant —
        the event loop's ``_ARRIVAL < _RETRY`` kind ordering.
        """
        arrival = self.prep.arrival
        if self.obs is not None and hi > lo:
            self.obs.on_arrivals(arrival[lo:hi])
        policy = self.prep.resilience
        accrue = policy.max_retries > 0
        budget = state.budget
        heap = state.retry_heap
        heappop = heapq.heappop
        step = 1 << 20
        pos = lo
        while pos < hi:
            end = min(pos + step, hi)
            ts = arrival[pos:end].tolist()
            for k2 in range(end - pos):
                t = ts[k2]
                while heap and heap[0][0] < t:
                    due, _seq, idx, attempt = heappop(heap)
                    self._advance(state, due, acc)
                    self._attempt_resilient(state, idx, attempt, due, acc)
                self._advance(state, t, acc)
                if accrue:
                    budget.accrue()
                self._attempt_resilient(state, pos + k2, 0, t, acc)
            pos = end

    def _fire_retries(
        self,
        state: ColumnarFleetState,
        acc: _Accum,
        limit: float,
        inclusive: bool,
    ) -> None:
        """Fire scheduled retries up to ``limit`` (their due instants).

        ``inclusive`` matches the event-kind ordering against the control
        event being processed: retries at a tick's instant precede the
        tick (``_RETRY < _TICK``) but follow fail/recover/gray events.
        """
        heap = state.retry_heap
        heappop = heapq.heappop
        while heap and (heap[0][0] <= limit if inclusive else heap[0][0] < limit):
            due, _seq, idx, attempt = heappop(heap)
            self._advance(state, due, acc)
            self._attempt_resilient(state, idx, attempt, due, acc)

    def _attempt_resilient(
        self,
        state: ColumnarFleetState,
        idx: int,
        attempt: int,
        now: float,
        acc: _Accum,
    ) -> None:
        """One admission attempt — the exact twin of ``Fleet._attempt``."""
        policy = self.prep.resilience
        obs = self.obs
        replicas = state.replicas
        live = state.live
        if not live:
            self._shed_or_retry(state, idx, attempt, now, acc, SHED_CODE_NO_CAPACITY)
            return
        if policy.breaker:
            candidates = []
            for rid in live:
                rep = replicas[rid]
                breaker = rep.breaker
                before = breaker.state
                ok = breaker.allows(now)
                if breaker.state is not before and obs is not None:
                    obs.on_breaker(rid, now, breaker.state)
                if ok:
                    candidates.append(rep)
            if not candidates:
                self._shed_or_retry(state, idx, attempt, now, acc, SHED_CODE_BREAKER)
                return
        else:
            candidates = [replicas[rid] for rid in live]
        best = candidates[0]
        projected = self._projection(best, now)
        second: Optional[_Rep] = None
        second_proj = math.inf
        for rep in candidates[1:]:
            challenger = self._projection(rep, now)
            if challenger < projected:
                second = best
                second_proj = projected
                best = rep
                projected = challenger
            elif challenger < second_proj:
                second = rep
                second_proj = challenger
        if policy.timeout_ms is not None and projected > policy.timeout_ms:
            state.chaos.timeouts += 1
            self._shed_or_retry(state, idx, attempt, now, acc, SHED_CODE_TIMEOUT)
            return
        slo = float(self.prep.slo[idx])
        base = self.factor * slo
        ladder = state.brownout
        if ladder is None:
            if projected > base:
                self._shed_or_retry(state, idx, attempt, now, acc, SHED_CODE_OVERLOAD)
                return
        else:
            if (
                ladder.level > 0
                and now - ladder.last_change_ms >= ladder.dwell_ms
                and projected <= base * ladder.levels[ladder.level - 1]
            ):
                ladder.level -= 1
                ladder.last_change_ms = now
                ladder.deescalations += 1
                state.chaos.brownout_deescalations += 1
                if obs is not None:
                    obs.on_brownout(now, ladder.level)
            bound = base * ladder.levels[ladder.level]
            top = len(ladder.levels) - 1
            while projected > bound and ladder.level < top:
                ladder.level += 1
                ladder.last_change_ms = now
                ladder.escalations += 1
                state.chaos.brownout_escalations += 1
                if obs is not None:
                    obs.on_brownout(now, ladder.level)
                bound = base * ladder.levels[ladder.level]
            if projected > bound:
                self._shed_or_retry(state, idx, attempt, now, acc, SHED_CODE_OVERLOAD)
                return
        b = int(self.prep.bucket_idx[idx])
        flushed = self._enqueue(best, b, idx, now, acc)
        if self.track_hist and (state.min_slo is None or slo < state.min_slo):
            state.min_slo = slo
        if (
            policy.hedge
            and second is not None
            and projected > policy.hedge_factor * slo
            and not flushed
        ):
            # Bookkeeping before the twin enqueue: the twin itself may
            # flush immediately and win on the spot (cancelling the
            # still-queued primary through _flush).
            primary_key = (best.rid, idx)
            state.hedge[primary_key] = (second.rid, b)
            state.hedge[(second.rid, idx)] = (best.rid, b)
            state.hedge_primary.add(primary_key)
            state.chaos.hedges += 1
            self._enqueue(second, b, idx, now, acc)

    def _shed_or_retry(
        self,
        state: ColumnarFleetState,
        idx: int,
        attempt: int,
        now: float,
        acc: _Accum,
        code: int,
    ) -> None:
        """Schedule a backoff retry, or make the shed final."""
        policy = self.prep.resilience
        if policy.max_retries > 0 and attempt < policy.max_retries:
            if state.budget.spend():
                delay = backoff_delay_ms(policy, self.prep.seed, idx, attempt + 1)
                state.chaos.retries += 1
                heapq.heappush(
                    state.retry_heap,
                    (now + delay, state.retry_seq, idx, attempt + 1),
                )
                state.retry_seq += 1
                return
            state.chaos.retry_budget_exhausted += 1
        acc.shed_idx_py.append(idx)
        acc.shed_code_py.append(code)
        if self.obs is not None:
            self.obs.on_shed(now, SHED_REASON_OF_CODE[code])

    # ------------------------------------------------------------------
    # windows, drain, report
    # ------------------------------------------------------------------
    def run_window(
        self,
        state: ColumnarFleetState,
        alo: int,
        ahi: int,
        events: Sequence[tuple],
    ) -> ShardPartial:
        """Process one time window: arrivals [alo, ahi) + control events."""
        acc = _Accum()
        self._cur_state = state
        arrival = self.prep.arrival
        resilient = self.resilient
        pos = alo
        for event in events:
            time_ms, kind = event[0], event[1]
            # arrivals strictly before the control event — and also the
            # arrivals *at* a tick's timestamp (arrival kind < tick kind;
            # every other control kind precedes arrivals at its instant).
            side = "right" if kind > _ARRIVAL else "left"
            j = int(np.searchsorted(arrival[pos:ahi], time_ms, side=side)) + pos
            self._run_arrivals(state, pos, j, acc)
            pos = j
            if resilient:
                # Retries due before this event fire first; ones due *at*
                # its instant precede only a tick (_RETRY < _TICK, but
                # recover/gray/fail kinds < _RETRY).
                self._fire_retries(state, acc, time_ms, inclusive=kind == _TICK)
            self._advance(state, time_ms, acc)
            if kind == _TICK:
                self._tick(state, time_ms, acc)
            elif kind == _FAIL:
                self._fail(state, event[3], time_ms, acc)
            elif kind == _GRAY_START:
                rid, slowdown, end_ms = event[3]
                # Unknown ids are a no-op, like Fleet.set_slowdown — but
                # the trace instant is still recorded (the plan said so).
                if rid < len(state.replicas):
                    state.replicas[rid].slowdown = slowdown
                if self.obs is not None:
                    self.obs.on_gray(rid, time_ms, end_ms, slowdown)
            elif kind == _GRAY_END:
                rid = event[3]
                if rid < len(state.replicas):
                    state.replicas[rid].slowdown = 1.0
            else:  # _RECOVER
                self._recover(state, event[3], time_ms)
            if time_ms > state.now:
                state.now = time_ms
        self._run_arrivals(state, pos, ahi, acc)
        self._cur_state = None
        return acc.to_partial()

    def drain_retries(self, state: ColumnarFleetState) -> ShardPartial:
        """Fire every retry still scheduled past the last window's events.

        The event loop's heap empties itself — retries are first-class
        events — so the columnar run drains the retry heap explicitly
        before the final queue drain.
        """
        acc = _Accum()
        self._cur_state = state
        self._fire_retries(state, acc, math.inf, inclusive=True)
        self._cur_state = None
        return acc.to_partial()

    def drain(self, state: ColumnarFleetState) -> ShardPartial:
        """``Fleet.drain``: flush remaining queues, all replicas, id order."""
        acc = _Accum()
        self._cur_state = state
        for rep in state.replicas:
            if rep.pending == 0:
                continue
            now = state.now
            while rep.pending:
                deadline = rep.next_dl
                now = max(now, deadline)
                self._fire_dues(rep, now, acc)
            rep.next_dl = None
        self._cur_state = None
        return acc.to_partial()

    def finalize(
        self, state: ColumnarFleetState, partials: Sequence[ShardPartial]
    ) -> FleetReport:
        prep = self.prep
        n = prep.num_requests
        finish, shed = merge_shard_partials(partials, n)
        total = sum(p.num_done + p.num_shed for p in partials)
        if total != n:
            raise RuntimeError(
                f"accepted requests never completed: {n - total} of {n} "
                "rows missing from shard partials — the fleet lost work"
            )
        # max over the shard partials' finish columns == max over the
        # merged completed rows (same multiset; max is exact).
        last_finish = 0.0
        for part in partials:
            if part.num_done:
                last_finish = max(last_finish, float(part.done_fin.max()))
        duration = max(prep.duration_ms, last_finish)
        replica_rows = [
            build_replica_stats(
                rep.rid,
                rep.spec.label,
                rep.added_ms,
                rep.retired_ms,
                rep.failures,
                rep.busy_ms,
                rep.batches,
                rep.requests,
                rep.downtime_ms,
                duration,
            )
            for rep in state.replicas
        ]
        chaos = None
        if prep.chaos_active:
            # Breaker transitions were counted inside each breaker (no
            # shared counter is reachable from _flush); the rollup here
            # equals the event loop's live tally — observe() increments
            # its own opens/closes alongside the fleet's.
            chaos = state.chaos
            for rep in state.replicas:
                if rep.breaker is not None:
                    chaos.breaker_opens += rep.breaker.opens
                    chaos.breaker_closes += rep.breaker.closes
        stats = build_fleet_stats_columns(
            duration_ms=duration,
            tenant_names=prep.tenant_names,
            tenant_idx=prep.tenant_idx,
            slo_ms=prep.slo,
            arrival_ms=prep.arrival,
            finish_ms=finish,
            shed_code=shed,
            shed_reasons=SHED_REASON_OF_CODE,
            migrations=state.migrations,
            replicas=replica_rows,
            scale_events=list(state.events),
            chaos=chaos,
        )
        return FleetReport(
            scenario=prep.name,
            seed=prep.seed,
            num_initial_replicas=len(prep.specs),
            autoscaled=prep.autoscale is not None,
            stats=stats,
        )


# ----------------------------------------------------------------------
# shard orchestration
# ----------------------------------------------------------------------
def shard_windows(
    prep: _Prepared, shards: int
) -> List[Tuple[int, int, List[tuple]]]:
    """Deterministic time-boundary decomposition of the event sequence.

    Window ``k`` owns every event (arrival or control) with
    ``duration * k / shards <= time < duration * (k+1) / shards``; the
    last window additionally owns everything at or past the horizon
    (ticks can land exactly on it).  Because windows are contiguous
    slices of the globally ordered event sequence, running them in turn
    with the state handed across boundaries replays exactly the
    single-shard run — shard counts are a pure checkpointing choice.
    """
    if shards < 1:
        raise ValueError(f"shards must be >= 1, got {shards}")
    arrival = prep.arrival
    n = int(arrival.shape[0])
    windows: List[Tuple[int, int, List[tuple]]] = []
    alo = 0
    clo = 0
    events = prep.events
    for k in range(1, shards + 1):
        if k < shards:
            edge = prep.duration_ms * k / shards
            ahi = int(np.searchsorted(arrival, edge, side="left"))
            chi = clo
            while chi < len(events) and events[chi][0] < edge:
                chi += 1
        else:
            ahi = n
            chi = len(events)
        windows.append((alo, ahi, list(events[clo:chi])))
        alo, clo = ahi, chi
    return windows


_WORKER_CTX: Optional[tuple] = None


def _window_worker(conn, window_index: int) -> None:
    engine, state, windows = _WORKER_CTX
    alo, ahi, events = windows[window_index]
    partial = engine.run_window(state, alo, ahi, events)
    # Observability state crosses the fork like ShardPartial does: the
    # worker drains its live buffers into a picklable partial; the parent
    # absorbs.  (The parent drained its own live buffers before forking,
    # so this partial holds exactly this window's records.)
    obs_partial = engine.obs.take_partial() if engine.obs is not None else None
    conn.send((partial, state, obs_partial))
    conn.close()


def _run_windows_in_processes(engine, state, windows):
    """Run each window in its own forked worker, state handed via pickle.

    Sequential by construction — window k+1 needs window k's final state —
    so this demonstrates cross-process determinism (each worker computes
    in a fresh address space) rather than parallel speedup.
    """
    import multiprocessing

    global _WORKER_CTX
    try:
        ctx = multiprocessing.get_context("fork")
    except ValueError:
        ctx = None
    if ctx is None:
        partials = [
            engine.run_window(state, alo, ahi, events)
            for alo, ahi, events in windows
        ]
        return partials, state
    if engine.obs is not None:
        # Park any pre-fork records (initial replica metadata) in the
        # master store so no child re-ships them.
        engine.obs.absorb(engine.obs.take_partial())
    partials = []
    for k in range(len(windows)):
        _WORKER_CTX = (engine, state, windows)
        parent, child = ctx.Pipe(duplex=False)
        proc = ctx.Process(target=_window_worker, args=(child, k))
        proc.start()
        child.close()
        partial, state, obs_partial = parent.recv()
        parent.close()
        proc.join()
        _WORKER_CTX = None
        if proc.exitcode != 0:
            raise RuntimeError(f"shard worker {k} exited {proc.exitcode}")
        if obs_partial is not None:
            engine.obs.absorb(obs_partial)
        partials.append(partial)
    return partials, state


def run_scenario_columnar(
    scenario: Union[str, Scenario, ColumnarTrace, Sequence[FleetRequest]],
    model,
    tokenizer,
    specs: List[ReplicaSpec],
    fleet_config: FleetConfig = FleetConfig(),
    autoscale: Optional[AutoscalePolicy] = None,
    scale_spec: Optional[ReplicaSpec] = None,
    failures: Sequence[FailureEvent] = (),
    seed: int = 0,
    rate_scale: float = 1.0,
    duration_scale: float = 1.0,
    shards: int = 1,
    shard_processes: bool = False,
    native: Optional[bool] = None,
    obs=None,
    chaos: Optional[ChaosPlan] = None,
    resilience: Optional[ResiliencePolicy] = None,
) -> FleetReport:
    """Columnar twin of :func:`repro.fleet.runner.run_scenario`.

    Same arguments, same report — byte-identical ``render()`` and
    ``to_json()`` output for equal inputs (the differential suite pins
    this against the event-loop analytic engine on every scenario
    class).  The model's weights are never touched: the columnar engine
    is inherently analytic, pricing every batch from the accelerator
    simulator's memoized schedule, exactly like ``analytic=True``.

    Args:
        scenario: Built-in name, :class:`Scenario`,
            :class:`~repro.fleet.scenarios.ColumnarTrace`, or a pre-built
            :class:`FleetRequest` sequence.
        model: Served model (only its config shapes the price tables).
        tokenizer: Tokenizer (prices text lengths, not contents).
        specs: Initial replica design points.
        fleet_config: Cluster policy.
        autoscale: Autoscaler policy (``None`` = fixed fleet).
        scale_spec: Design point for scale-up replicas.
        failures: Planned replica failures/recoveries.
        seed: Trace seed (ignored for pre-built traces).
        rate_scale: Rate multiplier for scenario generation.
        duration_scale: Duration multiplier for scenario generation.
        shards: Split the run into this many deterministic time windows.
        shard_processes: Run each window in a forked subprocess (state
            crosses via pickle; sequential, determinism demo — see
            ``docs/scaling.md``).
        native: Force the C kernel on/off; default auto-detects.  Results
            are identical either way.
        obs: Optional :class:`repro.obs.FleetObserver`.  Never changes a
            report byte; metric streams are byte-identical to the
            event-loop runner's at any shard count (the C kernel is
            bypassed while an observer is attached).
        chaos: Optional :class:`~repro.fleet.chaos.ChaosPlan` — same
            semantics as the event-loop runner's parameter (fail-stops,
            zone outages, gray windows).
        resilience: Optional :class:`~repro.fleet.chaos.ResiliencePolicy`
            — enables the per-arrival resilient admission path (timeout,
            breaker, brownout, retries, hedging), byte-identical to the
            event loop's at any shard count.

    Returns:
        The :class:`FleetReport`.
    """
    obs = obs or None
    grays: Sequence[GrayWindow] = ()
    if chaos is not None:
        failures = tuple(failures) + chaos.failure_events()
        grays = chaos.grays
    prep = _prepare(
        scenario,
        model,
        tokenizer,
        specs,
        fleet_config,
        autoscale,
        scale_spec,
        failures,
        seed,
        rate_scale,
        duration_scale,
        grays=grays,
        resilience=resilience,
        chaos_active=chaos is not None or resilience is not None,
    )
    engine = ColumnarFleetEngine(prep, use_native=native, obs=obs)
    state = engine.initial_state()
    windows = shard_windows(prep, shards)
    if shard_processes:
        partials, state = _run_windows_in_processes(engine, state, windows)
    else:
        partials = []
        for k, (alo, ahi, events) in enumerate(windows):
            partials.append(engine.run_window(state, alo, ahi, events))
            if obs is not None and k + 1 < len(windows):
                # Stream closed windows at each shard edge.  The watermark
                # backs off to the earliest pending batching deadline:
                # a queue carried across the boundary may still flush
                # (and finish) before the edge itself.
                edge = prep.duration_ms * (k + 1) / shards
                pending = [
                    rep.next_dl
                    for rep in state.replicas
                    if rep.next_dl is not None
                ]
                if state.retry_heap:
                    # A scheduled retry may still shed (or admit work
                    # that flushes) at its due instant — hold the
                    # watermark back to it.
                    pending.append(state.retry_heap[0][0])
                obs.advance(min([edge] + pending))
    if engine.resilient:
        partials.append(engine.drain_retries(state))
    partials.append(engine.drain(state))
    report = engine.finalize(state, partials)
    if obs is not None:
        obs.finalize(report)
    return report
