"""The fleet: N serving replicas behind SLO-aware routing and admission.

A :class:`Fleet` owns a set of :class:`Replica` objects — each one a full
:class:`~repro.serve.ServingEngine` over its own simulated accelerator —
and places every arriving :class:`~repro.fleet.scenarios.FleetRequest` on
the replica projected to finish it soonest.  Replicas may be heterogeneous:
each :class:`ReplicaSpec` names its own ``(AcceleratorConfig, FpgaDevice)``
design point, so a ZCU102 (8, 16) can serve next to a ZCU111 (16, 16) and
the router's projections price each accordingly.

Three cluster behaviors the single-node engine cannot express:

- **Admission control / load shedding.**  Before accepting a request the
  fleet projects its completion latency on the best replica (device
  backlog + queued batches x the simulator's batch service time).  If even
  the best projection exceeds ``admit_slo_factor`` x the tenant's SLO, the
  request is *shed* — a fast, explicit rejection instead of a doomed queue
  entry, the standard overload posture of production serving systems.

- **Failure injection + drain/recovery.**  ``fail_replica`` fail-stops a
  replica on the simulated clock: its queued-but-unflushed requests are
  evicted and *migrate* to the surviving replicas (batches already
  dispatched to the accelerator complete — the failure model is node-level
  drain/failover, so no accepted request is ever lost while a live replica
  remains).  ``recover_replica`` brings it back after a cold start.

- **Elastic capacity.**  ``add_replica`` / ``remove_replica`` grow and
  shrink the fleet mid-trace (the autoscaler's levers).  A new replica
  pays a cold-start penalty derived from the simulator's own schedule —
  ``cold_start_batches`` full-size batch times, modeling bitstream/weight
  load plus warm-up — before its first batch can start.

Everything runs on the shared simulated clock, so a fleet run is exactly
reproducible: same trace, same decisions, same numbers.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from ..accel.config import AcceleratorConfig
from ..accel.devices import FpgaDevice, ZCU102
from ..serve.engine import ServingConfig, ServingEngine
from .chaos import (
    BREAKER_OPEN,
    SHED_BREAKER,
    SHED_TIMEOUT,
    BrownoutLadder,
    ChaosStats,
    CircuitBreaker,
    ResiliencePolicy,
    RetryBudget,
    backoff_delay_ms,
)
from .scenarios import FleetRequest

SHED_OVERLOAD = "overload"          # projected latency beyond the admit bound
SHED_NO_CAPACITY = "no-capacity"    # no live replica at all


def reference_bucket(buckets: Tuple[int, ...]) -> int:
    """The bucket admission projections price an incoming request at.

    The middle bucket (a representative queued batch shape).  Shared by
    the event-loop fleet and the columnar engine so the admission rule
    cannot drift between them.
    """
    return buckets[len(buckets) // 2]


@dataclass(frozen=True)
class ReplicaSpec:
    """One replica's design point (the heterogeneous-fleet unit)."""

    accel_config: AcceleratorConfig = AcceleratorConfig()
    device: FpgaDevice = ZCU102
    name: str = ""

    @property
    def label(self) -> str:
        """Human-readable design-point label (used in reports)."""
        if self.name:
            return self.name
        return (
            f"{self.device.name}/H{self.accel_config.num_pus}"
            f"N{self.accel_config.num_pes}M{self.accel_config.num_multipliers}"
        )


@dataclass(frozen=True)
class FleetConfig:
    """Cluster-level policy: per-replica serving config plus admission."""

    serving: ServingConfig = ServingConfig(num_devices=1)
    admit_slo_factor: float = 2.0   # shed if projected > factor * tenant SLO
    cold_start_batches: int = 2     # warm-up passes making up the cold start

    def __post_init__(self):
        if self.serving.num_devices != 1:
            raise ValueError(
                "fleet replicas are single-device engines; scale with "
                "replicas, not num_devices"
            )
        if self.admit_slo_factor <= 0:
            raise ValueError(f"admit_slo_factor must be > 0, got {self.admit_slo_factor}")
        if self.cold_start_batches < 0:
            raise ValueError(f"cold_start_batches must be >= 0, got {self.cold_start_batches}")


@dataclass
class Replica:
    """One serving engine plus its fleet-level lifecycle state."""

    replica_id: int
    spec: ReplicaSpec
    engine: ServingEngine
    added_ms: float
    live: bool = True
    retired_ms: Optional[float] = None
    failures: int = 0
    # True while down *because of a fail-stop* (vs. scaled away) — the
    # recover_replica guard, so recovery never resurrects capacity the
    # autoscaler deliberately removed.
    failed: bool = False
    downtime_ms: float = 0.0   # cumulative failed time (excluded from live time)
    # engine request id -> fleet record, for failover remapping and the
    # observability hook (the object itself, so per-completion telemetry
    # skips an index hop through Fleet.records)
    record_of: Dict[int, "RequestRecord"] = field(default_factory=dict)
    # bucket -> full-size-batch service ms on this design point (admission
    # pricing; filled from the fleet-wide design-point cache at attach time)
    bucket_price: Dict[int, float] = field(default_factory=dict)
    # per-replica straggle detector; None unless the resilience policy
    # enables the circuit breaker
    breaker: Optional[CircuitBreaker] = None


@dataclass
class RequestRecord:
    """Fleet-level accounting for one submitted request.

    Latency is measured from the *original* fleet arrival — a migrated
    request keeps its first arrival time, so failover never hides queueing
    delay.
    """

    index: int
    tenant: str
    slo_ms: float
    arrival_ms: float
    shed: bool = False
    shed_reason: str = ""
    replica_id: int = -1
    migrations: int = 0
    # filled by Fleet.collect() after the trace drains:
    finish_ms: float = 0.0
    latency_ms: float = 0.0
    slo_met: bool = False
    completed: bool = False


class Fleet:
    """N serving replicas, one shared simulated clock, SLO-aware routing."""

    def __init__(
        self,
        model,
        tokenizer,
        specs: List[ReplicaSpec],
        config: FleetConfig = FleetConfig(),
        obs=None,
        resilience: Optional[ResiliencePolicy] = None,
        seed: int = 0,
    ):
        """Args:
            model: The frozen integer model every replica serves (shared —
                engines never mutate it, and sharing amortizes its cached
                weight plans across the fleet).
            tokenizer: Tokenizer shared by every replica's engine.
            specs: Initial replica design points (at least one).
            config: Cluster policy.
            obs: Optional :class:`repro.obs.FleetObserver`; ``None`` (or a
                falsy null sink) keeps every seam off the hot path.
            resilience: Optional :class:`~repro.fleet.chaos.ResiliencePolicy`
                enabling the resilient admission path (:meth:`submit_resilient`).
                ``None`` keeps :meth:`submit` the only request path and every
                resilience seam off the hot loop.
            seed: Run seed — only consumed by the deterministic retry
                backoff hash, never by request routing.

        Raises:
            ValueError: If ``specs`` is empty.
        """
        if not specs:
            raise ValueError("a fleet needs at least one initial replica")
        self.model = model
        self.tokenizer = tokenizer
        self.config = config
        self.obs = obs or None
        self.resilience = resilience
        self.seed = seed
        # Resilience counters (the report's chaos section; attached by the
        # driver only for chaos-aware runs).
        self.chaos = ChaosStats()
        self._budget = (
            RetryBudget.from_policy(resilience) if resilience is not None else None
        )
        self._brownout = (
            BrownoutLadder.from_policy(resilience)
            if resilience is not None and resilience.brownout
            else None
        )
        # Backoff retries scheduled since the driver last drained them:
        # (due_ms, record, request, next_attempt).  The fleet cannot see
        # the event heap, so the runner re-enqueues these as timed events.
        self._retry_out: List[tuple] = []
        # Hedged pairs: (replica_id, engine_request_id) -> its twin's key,
        # both directions, plus the set of primary keys (for hedge_wins).
        self._hedge_twin: Dict[Tuple[int, int], Tuple[int, int]] = {}
        self._hedge_primary: set = set()
        self.replicas: Dict[int, Replica] = {}
        self.records: List[RequestRecord] = []
        self.now_ms = 0.0
        self.migrations = 0
        # Tightest SLO among accepted requests so far — the autoscaler's
        # p99 floor, maintained incrementally so ticks stay O(replicas).
        self.min_accepted_slo_ms: Optional[float] = None
        self._next_replica_id = 0
        # The reference shape admission projections are priced at (see
        # module-level reference_bucket).
        self._ref_bucket = reference_bucket(config.serving.buckets)
        # Full-size-batch service ms per (design point, bucket), shared by
        # every replica of that design point: admission pricing is then
        # plain dict lookups, and a scale-up replica of a known design
        # point costs zero extra simulator calls.
        self._price_cache: Dict[Tuple[AcceleratorConfig, FpgaDevice, int], float] = {}
        # Live replicas in id order, maintained across lifecycle events so
        # the per-request routing path never re-sorts the replica map.
        self._live: List[Replica] = []
        for spec in specs:
            self.add_replica(spec, now_ms=0.0, cold=False)

    # ------------------------------------------------------------------
    # replica lifecycle
    # ------------------------------------------------------------------
    def add_replica(self, spec: ReplicaSpec, now_ms: float, cold: bool = True) -> Replica:
        """Attach a new replica, optionally behind a cold-start window.

        Args:
            spec: The replica's design point.
            now_ms: Simulated attach time.
            cold: Apply the cold-start penalty (initial replicas at t=0
                are assumed pre-warmed).

        Returns:
            The new :class:`Replica` (already routable; a cold replica is
            simply projected as busy until its warm-up completes).
        """
        engine = ServingEngine(
            self.model,
            self.tokenizer,
            self.config.serving,
            accel_config=spec.accel_config,
            device=spec.device,
        )
        engine.advance(now_ms)
        replica = Replica(
            replica_id=self._next_replica_id,
            spec=spec,
            engine=engine,
            added_ms=now_ms,
        )
        self._next_replica_id += 1
        policy = self.config.serving
        for bucket in policy.buckets:
            key = (spec.accel_config, spec.device, bucket)
            price = self._price_cache.get(key)
            if price is None:
                price = self._price_cache[key] = engine.router.estimate_latency_ms(
                    bucket, policy.max_batch_size
                )
            replica.bucket_price[bucket] = price
        cold_ms = self.cold_start_ms(replica) if cold else 0.0
        if cold:
            engine.router.block_until(now_ms + cold_ms)
        if self.resilience is not None and self.resilience.breaker:
            replica.breaker = CircuitBreaker.from_policy(self.resilience)
        self.replicas[replica.replica_id] = replica
        self._rebuild_live()
        if self.obs is not None:
            self.obs.on_replica(replica.replica_id, spec.label, now_ms, cold_ms)
        if self.obs is not None or replica.breaker is not None or (
            self.resilience is not None and self.resilience.hedge
        ):
            self._install_batch_hook(replica)
        return replica

    def _install_batch_hook(self, replica: Replica) -> None:
        """Wire the engine's batch seam to its fleet-level consumers.

        Up to three consumers share the one seam, in fixed order:

        1. The observer — translates engine-local batch results into
           fleet-level telemetry: latency against the *original* arrival
           in the fleet record (a migrated request keeps its true
           arrival), SLO against the record's own bound — exactly the
           numbers the report is built from.  This block is byte-for-byte
           the pre-chaos hook.
        2. The replica's circuit breaker — scores realized service
           against the nominal (memoized) simulator price, so a gray
           window's stretched batches register as straggles.
        3. The hedging layer — the first copy of a hedged request to
           execute cancels its still-queued twin (replicas advance
           sequentially on the shared clock, so the twin is always still
           cancellable).

        Installed only when at least one consumer is active; plain runs
        keep the seam entirely off the hot path.
        """
        obs = self.obs
        on_batch = obs.on_batch if obs is not None else None
        on_completions = obs.on_completions if obs is not None else None
        record_of = replica.record_of
        rid = replica.replica_id
        breaker = replica.breaker
        estimate = replica.engine.router.estimate_latency_ms
        policy = self.resilience
        hedging = policy is not None and policy.hedge
        straggle_factor = (
            policy.breaker_straggle_factor if policy is not None else 0.0
        )
        chaos = self.chaos

        def hook(requests, dispatch, bucket, size):
            if on_batch is not None:
                finish = dispatch.finish_ms
                latencies = []
                append = latencies.append
                met = 0
                # Worst request = earliest fleet arrival (ties: earliest
                # enqueue) — a pure multiset min, so both engines pick the
                # same request regardless of iteration order.  Its phase
                # decomposition rides the batch span for the critical-path
                # analyzer: wl = wr (retry/hedge) + wb (batch formation) +
                # wq (queue wait) + service, up to float rounding.
                worst_arr = worst_enq = float("inf")
                last_enq = float("-inf")
                for request in requests:
                    record = record_of[request.request_id]
                    arr = record.arrival_ms
                    latency = finish - arr
                    append(latency)
                    if latency <= record.slo_ms:
                        met += 1
                    enq = request.arrival_ms
                    if arr < worst_arr or (arr == worst_arr and enq < worst_enq):
                        worst_arr = arr
                        worst_enq = enq
                    if enq > last_enq:
                        last_enq = enq
                start = dispatch.start_ms
                on_batch((
                    rid, bucket, size, start, dispatch.service_ms,
                    finish - worst_arr, worst_enq - worst_arr,
                    last_enq - worst_enq, start - last_enq,
                ))
                on_completions(finish, latencies, met)
            if breaker is not None:
                nominal = estimate(bucket, size)
                transition = breaker.observe(
                    dispatch.finish_ms,
                    dispatch.service_ms > straggle_factor * nominal,
                )
                if transition is not None:
                    if transition == BREAKER_OPEN:
                        chaos.breaker_opens += 1
                    else:
                        chaos.breaker_closes += 1
                    if obs is not None:
                        obs.on_breaker(rid, dispatch.finish_ms, transition)
            if hedging:
                for request in requests:
                    key = (rid, request.request_id)
                    twin_key = self._hedge_twin.pop(key, None)
                    if twin_key is None:
                        continue
                    del self._hedge_twin[twin_key]
                    twin_rid, twin_engine_rid = twin_key
                    twin = self.replicas[twin_rid]
                    if not twin.engine.cancel_pending(twin_engine_rid):
                        raise RuntimeError(
                            f"hedged twin {twin_engine_rid} on replica "
                            f"{twin_rid} was not cancellable — hedge "
                            f"bookkeeping out of sync"
                        )
                    del twin.record_of[twin_engine_rid]
                    record_of[request.request_id].replica_id = rid
                    if key in self._hedge_primary:
                        self._hedge_primary.discard(key)
                    else:
                        chaos.hedge_wins += 1
                        self._hedge_primary.discard(twin_key)

        replica.engine.on_batch = hook

    def cold_start_ms(self, replica: Replica) -> float:
        """The replica's cold-start penalty, from the simulator's schedule.

        Modeled as ``cold_start_batches`` executions of the largest-bucket,
        full-size batch — the bitstream/weight load plus warm-up passes a
        real node spends before serving, priced by the same cycle-level
        schedule as the traffic itself (a slower design point also boots
        slower).
        """
        policy = self.config.serving
        return self.config.cold_start_batches * replica.engine.router.estimate_latency_ms(
            policy.max_seq_len, policy.max_batch_size
        )

    def remove_replica(self, replica_id: int, now_ms: float) -> None:
        """Gracefully drain one replica out of the fleet (scale-down).

        Its queued requests migrate to the remaining replicas; batches the
        accelerator already started complete and keep their results.

        Args:
            replica_id: Which replica to retire.
            now_ms: Simulated removal time.

        Raises:
            KeyError: If the replica does not exist.
            ValueError: If it is not live, or it is the last live replica.
        """
        replica = self.replicas[replica_id]
        if not replica.live:
            raise ValueError(f"replica {replica_id} is not live")
        if len(self._live) == 1:
            raise ValueError("refusing to remove the last live replica")
        replica.live = False
        replica.retired_ms = now_ms
        self._rebuild_live()
        self._migrate_pending(replica, now_ms)

    def fail_replica(self, replica_id: int, now_ms: float) -> None:
        """Fail-stop one replica: stop routing to it, migrate its queue.

        No accepted request is lost: queued work moves to the survivors
        (or is shed with reason ``no-capacity`` if none remain), and
        already-dispatched batches complete under the node-level
        drain/failover model described in the module docstring.

        Failing a replica that does not exist (yet) or is already down is
        a no-op — a failure plan may legitimately target a replica the
        autoscaler never got around to creating.

        Args:
            replica_id: Which replica fails.
            now_ms: Simulated failure time.
        """
        replica = self.replicas.get(replica_id)
        if replica is None or not replica.live:
            return  # unknown or already down (or scaled away) — no-op
        replica.live = False
        replica.retired_ms = now_ms
        replica.failures += 1
        replica.failed = True
        self._rebuild_live()
        if self.obs is not None:
            self.obs.on_failure(replica_id, now_ms)
        self._migrate_pending(replica, now_ms)

    def recover_replica(self, replica_id: int, now_ms: float) -> None:
        """Bring a failed replica back behind a fresh cold-start window.

        Contract — recovery is a **silent no-op** when the target cannot
        meaningfully recover, because a failure plan is written against
        replica ids the autoscaler may reshape under it:

        - *unknown id*: the replica was never created (e.g. the plan
          assumed a scale-up that never happened);
        - *already live*: nothing to do;
        - *not down by fail-stop* (``failed`` unset): the replica is down
          because the **autoscaler scaled it away**, not because it
          failed — recovery must not resurrect capacity the autoscaler
          deliberately removed.  This is the race where a planned
          fail/recover pair straddles a scale-down of the same id: the
          fail half also no-ops (see :meth:`fail_replica`), so the pair
          drops out cleanly instead of fighting the autoscaler.  The
          guard is the explicit down-cause flag, not ``failures == 0`` —
          a replica that failed, recovered, and was *later* scaled away
          must stay gone too.

        Both engines implement this exact guard, so the race resolves
        byte-identically (``tests/fleet/test_chaos.py`` pins it).

        Args:
            replica_id: Which replica recovers.
            now_ms: Simulated recovery time.
        """
        replica = self.replicas.get(replica_id)
        if replica is None or replica.live or not replica.failed:
            return  # unknown, live, or scaled away (not failed) — no-op
        replica.engine.advance(now_ms)
        cold_ms = self.cold_start_ms(replica)
        replica.engine.router.block_until(now_ms + cold_ms)
        if self.obs is not None:
            self.obs.on_recovery(replica_id, now_ms, cold_ms)
        replica.live = True
        replica.failed = False
        if replica.retired_ms is not None:
            replica.downtime_ms += now_ms - replica.retired_ms
        replica.retired_ms = None
        self._rebuild_live()

    def _rebuild_live(self) -> None:
        """Refresh the cached live list (call after any lifecycle change)."""
        self._live = [r for rid, r in sorted(self.replicas.items()) if r.live]

    def live_replicas(self) -> List[Replica]:
        """Live replicas in id order (deterministic routing order).

        Returns the maintained list (rebuilt on lifecycle events, not per
        call — the routing path reads it once per request); callers must
        treat it as read-only.
        """
        return self._live

    # ------------------------------------------------------------------
    # clock + request path
    # ------------------------------------------------------------------
    def advance(self, now_ms: float) -> None:
        """Advance every live replica's engine to the shared clock.

        Inlines the engine's "anything due?" probe: this runs once per
        event x live replica (the busiest loop of a million-request run),
        and almost every probe answers no — so the common case is two
        attribute reads and a compare, with the full
        :meth:`~repro.serve.ServingEngine.advance` only invoked when a
        batching deadline actually fires.
        """
        for replica in self._live:
            engine = replica.engine
            deadline = engine.batcher._next_deadline
            if deadline is not None and deadline <= now_ms:
                engine.advance(now_ms)
            elif now_ms > engine.now_ms:
                engine.now_ms = now_ms
        if now_ms > self.now_ms:
            self.now_ms = now_ms

    def projected_latency_ms(self, replica: Replica, now_ms: float) -> float:
        """Admission projection: completion latency of one more request here.

        Device backlog (time until the accelerator frees up), plus the
        simulator-priced service of the batches already queued — per
        bucket, from the batcher's real queue depths — plus one
        reference-shape batch for the incoming request and the batching
        deadline it may wait out.  A cheap queue-state heuristic: it only
        has to *rank* replicas and flag overload, not predict exact
        latencies.  Every price is a pre-warmed ``bucket_price`` lookup
        (the fleet-level design-point cache), so the per-request admission
        path never touches the simulator.
        """
        engine = replica.engine
        policy = self.config.serving
        devices = engine.router.devices
        if len(devices) == 1:
            backlog = devices[0].busy_until_ms - now_ms
        else:
            backlog = min(d.busy_until_ms for d in devices) - now_ms
        if backlog < 0.0:
            backlog = 0.0
        max_batch = policy.max_batch_size
        prices = replica.bucket_price
        queued = 0.0
        # The batcher's queues are read in place (not via queued_by_bucket,
        # which would build a dict per projection x replica x arrival).
        for bucket, queue in engine.batcher._queues.items():
            depth = len(queue)
            if depth:
                queued += ((depth + max_batch - 1) // max_batch) * prices[bucket]
        return backlog + queued + prices[self._ref_bucket] + policy.max_wait_ms

    def submit(self, request: FleetRequest) -> RequestRecord:
        """Route one arrival: admit to the best replica, or shed.

        Args:
            request: The arriving request (its ``arrival_ms`` must be at or
                after the fleet clock; call :meth:`advance` first).

        Returns:
            The request's :class:`RequestRecord` (``shed`` set if rejected).

        Note:
            Arrival-window recording is the *driver's* job — the event-loop
            runner and the columnar sweep both bulk-record arrival times
            upfront (the trace is known before the loop starts), so submit
            itself only records sheds.
        """
        now_ms = request.arrival_ms
        obs = self.obs
        record = RequestRecord(
            index=len(self.records),
            tenant=request.tenant,
            slo_ms=request.slo_ms,
            arrival_ms=now_ms,
        )
        self.records.append(record)
        live = self._live
        if not live:
            record.shed = True
            record.shed_reason = SHED_NO_CAPACITY
            if obs is not None:
                obs.on_shed(now_ms, SHED_NO_CAPACITY)
            return record
        # Plain loop instead of min() over a generator of tuples: this runs
        # once per arrival, and a strict < keeps the first (lowest-id)
        # replica on ties — the same order the tuple key produced.
        projected_of = self.projected_latency_ms
        best = live[0]
        projected = projected_of(best, now_ms)
        for candidate in live[1:]:
            challenger = projected_of(candidate, now_ms)
            if challenger < projected:
                projected = challenger
                best = candidate
        if projected > self.config.admit_slo_factor * request.slo_ms:
            record.shed = True
            record.shed_reason = SHED_OVERLOAD
            if obs is not None:
                obs.on_shed(now_ms, SHED_OVERLOAD)
            return record
        # Map the engine-local id before submitting: a full batch flushes
        # inside submit, and the observability hook resolves fleet records
        # for every request in the executed batch — including this one.
        best.record_of[best.engine._next_id] = record
        best.engine.submit(request.text_a, request.text_b, arrival_ms=now_ms)
        record.replica_id = best.replica_id
        if self.min_accepted_slo_ms is None or request.slo_ms < self.min_accepted_slo_ms:
            self.min_accepted_slo_ms = request.slo_ms
        return record

    # ------------------------------------------------------------------
    # resilient request path (chaos layer)
    # ------------------------------------------------------------------
    def set_slowdown(self, replica_id: int, slowdown: float) -> None:
        """Enter/leave a gray window: stretch one replica's realized service.

        Applied directly on the replica's router — the admission
        projections deliberately keep pricing the *nominal* schedule (a
        router cannot know a node went gray; only the circuit breaker,
        watching realized service, reacts).  Setting it on a currently
        failed replica is fine: the slowdown persists across recovery
        until the window's end event clears it.  Unknown ids are a no-op
        (a plan may target a replica the autoscaler never created).
        """
        replica = self.replicas.get(replica_id)
        if replica is None:
            return
        replica.engine.router.slowdown = slowdown

    def take_retries(self) -> List[tuple]:
        """Drain retries scheduled since the last drain.

        The runner owns the event heap, so the fleet hands scheduled
        backoff retries back as ``(due_ms, record, request, attempt)``
        tuples for re-entry as timed events.
        """
        out = self._retry_out
        self._retry_out = []
        return out

    def submit_resilient(self, request: FleetRequest) -> RequestRecord:
        """Route one arrival through the resilient admission path.

        The chaos-aware sibling of :meth:`submit`: same record bookkeeping
        and routing rule, plus (in order) circuit-breaker filtering,
        timeout fail-fast, brownout degradation of the admission bound,
        hedging of risky admissions, and scheduling of backoff retries
        instead of final sheds while attempts remain.
        """
        now_ms = request.arrival_ms
        record = RequestRecord(
            index=len(self.records),
            tenant=request.tenant,
            slo_ms=request.slo_ms,
            arrival_ms=now_ms,
        )
        self.records.append(record)
        policy = self.resilience
        if self._budget is not None and policy.max_retries > 0:
            self._budget.accrue()
        self._attempt(record, request, 0, now_ms)
        return record

    def retry_attempt(self, payload: tuple, now_ms: float) -> None:
        """Re-run admission for one backoff retry (a ``_RETRY`` event)."""
        record, request, attempt = payload
        self._attempt(record, request, attempt, now_ms)

    def _attempt(
        self, record: RequestRecord, request: FleetRequest, attempt: int, now_ms: float
    ) -> None:
        """One admission attempt; sheds become retries while attempts remain."""
        policy = self.resilience
        obs = self.obs
        live = self._live
        if not live:
            self._shed_or_retry(record, request, attempt, now_ms, SHED_NO_CAPACITY)
            return
        # Circuit-breaker filter, in replica-id order (the same order both
        # engines mutate breaker state in, so lazy open -> half-open
        # transitions land identically).
        if policy.breaker:
            candidates = []
            for replica in live:
                breaker = replica.breaker
                before = breaker.state
                ok = breaker.allows(now_ms)
                if breaker.state is not before and obs is not None:
                    obs.on_breaker(replica.replica_id, now_ms, breaker.state)
                if ok:
                    candidates.append(replica)
            if not candidates:
                self._shed_or_retry(record, request, attempt, now_ms, SHED_BREAKER)
                return
        else:
            candidates = live
        # Best and runner-up by projection, strict < keeping the lowest id
        # on ties — identical to submit's rule, plus the second-best
        # tracking the hedge needs.
        projected_of = self.projected_latency_ms
        best = candidates[0]
        projected = projected_of(best, now_ms)
        second: Optional[Replica] = None
        second_proj = float("inf")
        for candidate in candidates[1:]:
            challenger = projected_of(candidate, now_ms)
            if challenger < projected:
                second = best
                second_proj = projected
                best = candidate
                projected = challenger
            elif challenger < second_proj:
                second = candidate
                second_proj = challenger
        if policy.timeout_ms is not None and projected > policy.timeout_ms:
            self.chaos.timeouts += 1
            self._shed_or_retry(record, request, attempt, now_ms, SHED_TIMEOUT)
            return
        base = self.config.admit_slo_factor * record.slo_ms
        ladder = self._brownout
        if ladder is None:
            if projected > base:
                self._shed_or_retry(record, request, attempt, now_ms, SHED_OVERLOAD)
                return
        else:
            # De-escalate at most one level per admission, behind dwell
            # hysteresis; escalate as far as needed (shed only at the top).
            if (
                ladder.level > 0
                and now_ms - ladder.last_change_ms >= ladder.dwell_ms
                and projected <= base * ladder.levels[ladder.level - 1]
            ):
                ladder.level -= 1
                ladder.last_change_ms = now_ms
                ladder.deescalations += 1
                self.chaos.brownout_deescalations += 1
                if obs is not None:
                    obs.on_brownout(now_ms, ladder.level)
            bound = base * ladder.levels[ladder.level]
            top = len(ladder.levels) - 1
            while projected > bound and ladder.level < top:
                ladder.level += 1
                ladder.last_change_ms = now_ms
                ladder.escalations += 1
                self.chaos.brownout_escalations += 1
                if obs is not None:
                    obs.on_brownout(now_ms, ladder.level)
                bound = base * ladder.levels[ladder.level]
            if projected > bound:
                self._shed_or_retry(record, request, attempt, now_ms, SHED_OVERLOAD)
                return
        engine_rid = best.engine._next_id
        best.record_of[engine_rid] = record
        best.engine.submit(request.text_a, request.text_b, arrival_ms=now_ms)
        record.replica_id = best.replica_id
        if self.min_accepted_slo_ms is None or record.slo_ms < self.min_accepted_slo_ms:
            self.min_accepted_slo_ms = record.slo_ms
        if (
            policy.hedge
            and second is not None
            and projected > policy.hedge_factor * record.slo_ms
            and engine_rid not in best.engine.results
        ):
            # The primary copy is still queued (its enqueue did not flush a
            # full batch), so duplicate onto the runner-up; whichever copy
            # executes first cancels the other via the batch hook.  All
            # hedge bookkeeping is installed *before* the twin submit —
            # the twin itself may flush immediately and win on the spot.
            twin_engine_rid = second.engine._next_id
            primary_key = (best.replica_id, engine_rid)
            twin_key = (second.replica_id, twin_engine_rid)
            self._hedge_twin[primary_key] = twin_key
            self._hedge_twin[twin_key] = primary_key
            self._hedge_primary.add(primary_key)
            second.record_of[twin_engine_rid] = record
            self.chaos.hedges += 1
            second.engine.submit(request.text_a, request.text_b, arrival_ms=now_ms)

    def _shed_or_retry(
        self,
        record: RequestRecord,
        request: FleetRequest,
        attempt: int,
        now_ms: float,
        reason: str,
    ) -> None:
        """Schedule a backoff retry, or make the shed final.

        A retry is scheduled only while attempts remain *and* the retry
        budget grants a token; the deterministic delay comes from
        :func:`~repro.fleet.chaos.backoff_delay_ms` on
        ``(seed, record.index, attempt + 1)``.
        """
        policy = self.resilience
        if policy is not None and policy.max_retries > 0 and attempt < policy.max_retries:
            if self._budget.spend():
                delay = backoff_delay_ms(policy, self.seed, record.index, attempt + 1)
                self.chaos.retries += 1
                self._retry_out.append((now_ms + delay, record, request, attempt + 1))
                return
            self.chaos.retry_budget_exhausted += 1
        record.shed = True
        record.shed_reason = reason
        if self.obs is not None:
            self.obs.on_shed(now_ms, reason)

    def _migrate_pending(self, replica: Replica, now_ms: float) -> None:
        """Move a dead/draining replica's queued requests to the survivors.

        Migrated requests keep their original arrival time in the fleet
        record but re-enter another replica's queue at ``now_ms`` — exactly
        what a failover proxy would do.  Admission control does not re-run:
        the requests were already accepted, and accepted work is never
        shed while a live replica remains.
        """
        evicted = replica.engine.evict_pending()
        if not evicted:
            return
        survivors = self.live_replicas()
        for request in evicted:
            record = replica.record_of.pop(request.request_id)
            key = (replica.replica_id, request.request_id)
            twin_key = self._hedge_twin.pop(key, None)
            if twin_key is not None:
                # One copy of a hedged pair was queued here; the twin
                # (still queued elsewhere) carries the request alone from
                # now on — dropping this copy instead of migrating it
                # avoids double execution.
                del self._hedge_twin[twin_key]
                self._hedge_primary.discard(key)
                self._hedge_primary.discard(twin_key)
                record.replica_id = twin_key[0]
                continue
            if not survivors:
                record.shed = True
                record.shed_reason = SHED_NO_CAPACITY
                record.replica_id = -1
                if self.obs is not None:
                    # Bucketed at the migration time, not the original
                    # arrival: that is when the request actually left the
                    # system, and it keeps window flushes watermark-safe.
                    self.obs.on_shed(now_ms, SHED_NO_CAPACITY)
                continue
            target = min(
                survivors,
                key=lambda r: (self.projected_latency_ms(r, now_ms), r.replica_id),
            )
            # Pre-map for the same reason as submit: resubmission can flush
            # a full batch (containing this request) before returning.
            target.record_of[target.engine._next_id] = record
            target.engine.submit(
                request.text_a, request.text_b, arrival_ms=now_ms
            )
            record.replica_id = target.replica_id
            record.migrations += 1
            self.migrations += 1

    # ------------------------------------------------------------------
    # completion
    # ------------------------------------------------------------------
    def drain(self) -> None:
        """Flush every replica's remaining queued work (end of trace)."""
        for replica in sorted(self.replicas.values(), key=lambda r: r.replica_id):
            replica.engine.drain()

    def collect(self) -> List[RequestRecord]:
        """Fill every accepted record from its engine's results.

        Call after :meth:`drain`.  Latency is finish minus the *original*
        fleet arrival, so migrated requests carry their full wait.

        Returns:
            All records, in submission order.

        Raises:
            RuntimeError: If an accepted request never completed — that
                would mean the fleet lost work, which the failover
                machinery exists to prevent.
        """
        for replica in self.replicas.values():
            for engine_rid, record in replica.record_of.items():
                result = replica.engine.results.get(engine_rid)
                if result is None:
                    raise RuntimeError(
                        f"accepted request {record.index} vanished on replica "
                        f"{replica.replica_id} — fleet lost accepted work"
                    )
                record.finish_ms = result.finish_ms
                record.latency_ms = result.finish_ms - record.arrival_ms
                record.slo_met = record.latency_ms <= record.slo_ms
                record.completed = True
        lost = [
            r.index for r in self.records if not r.shed and not r.completed
        ]
        if lost:
            raise RuntimeError(f"accepted requests never completed: {lost[:10]}")
        return self.records
