"""FQ-BERT reproduction: fully quantized BERT + FPGA accelerator simulator.

Reproduction of Liu, Li & Cheng, "Hardware Acceleration of Fully Quantized
BERT for Efficient Natural Language Processing" (DATE 2021).

Subpackages:

- :mod:`repro.autograd` — numpy autograd engine (training substrate)
- :mod:`repro.bert` — BERT encoder implementation
- :mod:`repro.data` — synthetic GLUE-like tasks (SST-2-like, MNLI-like)
- :mod:`repro.quant` — the FQ-BERT quantization flow (the paper's Sec. II)
- :mod:`repro.accel` — the accelerator simulator (the paper's Sec. III)
- :mod:`repro.baselines` — CPU/GPU roofline baselines (Table IV)
- :mod:`repro.experiments` — drivers regenerating every table and figure
"""

__version__ = "1.0.0"
