"""FQ-BERT reproduction: fully quantized BERT + FPGA accelerator simulator.

Reproduction of Liu, Li & Cheng, "Hardware Acceleration of Fully Quantized
BERT for Efficient Natural Language Processing" (DATE 2021).

Subpackages:

- :mod:`repro.autograd` — numpy autograd engine (training substrate)
- :mod:`repro.bert` — BERT encoder implementation
- :mod:`repro.data` — synthetic GLUE-like tasks (SST-2-like, MNLI-like)
- :mod:`repro.quant` — the FQ-BERT quantization flow (the paper's Sec. II)
- :mod:`repro.accel` — the accelerator simulator (the paper's Sec. III)
- :mod:`repro.serve` — dynamic-batching inference serving over the integer
  model and simulated accelerator instances (LRU tokenization cache,
  sequence-length-bucketed batching, multi-device routing, latency/SLO
  accounting on a deterministic simulated clock)
- :mod:`repro.fleet` — cluster-scale serving simulation over
  :mod:`repro.serve`: scenario workload generation, heterogeneous replica
  fleets with SLO-aware routing and load shedding, autoscaling, and
  replica failure injection/recovery
- :mod:`repro.perf` — profiling, pinned benchmark suites, and the
  bench-regression gate
- :mod:`repro.baselines` — CPU/GPU roofline baselines (Table IV)
- :mod:`repro.experiments` — drivers regenerating every table and figure
"""

__version__ = "1.1.0"
