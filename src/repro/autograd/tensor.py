"""Reverse-mode automatic differentiation on top of numpy.

This module is the computational substrate of the reproduction: the paper
fine-tunes BERT with quantization-aware training (QAT) in PyTorch, which is
not available in this environment, so we implement the minimal tensor/autograd
machinery needed to train and fake-quantize transformer models from scratch.

The design is a classic dynamic tape: every differentiable operation builds a
``Tensor`` whose ``_backward`` closure knows how to push gradients to its
parents.  Calling :meth:`Tensor.backward` runs a topological sort over the
recorded graph and accumulates ``.grad`` arrays on every tensor that has
``requires_grad=True``.
"""

from __future__ import annotations

from typing import Callable, Iterable, Optional, Sequence, Tuple, Union

import numpy as np

ArrayLike = Union[np.ndarray, float, int, Sequence]

_DEFAULT_DTYPE = np.float32

# Global switch used by ``no_grad`` to disable graph construction, e.g. for
# evaluation passes and EMA statistics collection during QAT.
_GRAD_ENABLED = True


class no_grad:
    """Context manager that disables gradient tracking.

    Mirrors ``torch.no_grad``; inside the block every operation produces
    constant tensors, which keeps evaluation cheap and prevents the tape from
    retaining activation memory.
    """

    def __enter__(self):
        global _GRAD_ENABLED
        self._prev = _GRAD_ENABLED
        _GRAD_ENABLED = False
        return self

    def __exit__(self, exc_type, exc, tb):
        global _GRAD_ENABLED
        _GRAD_ENABLED = self._prev
        return False


def is_grad_enabled() -> bool:
    """Return whether operations currently record the autograd tape."""
    return _GRAD_ENABLED


def _as_array(value: ArrayLike, dtype=_DEFAULT_DTYPE) -> np.ndarray:
    if isinstance(value, np.ndarray):
        if value.dtype != dtype:
            return value.astype(dtype)
        return value
    return np.asarray(value, dtype=dtype)


def _unbroadcast(grad: np.ndarray, shape: Tuple[int, ...]) -> np.ndarray:
    """Sum ``grad`` down to ``shape`` to undo numpy broadcasting.

    Numpy broadcasting implicitly expands operands; the adjoint of a broadcast
    is a sum over the broadcast axes, which this helper performs.
    """
    if grad.shape == shape:
        return grad
    # Sum over leading axes added by broadcasting.
    extra = grad.ndim - len(shape)
    if extra > 0:
        grad = grad.sum(axis=tuple(range(extra)))
    # Sum over axes that were 1 in the original shape.
    axes = tuple(i for i, dim in enumerate(shape) if dim == 1 and grad.shape[i] != 1)
    if axes:
        grad = grad.sum(axis=axes, keepdims=True)
    return grad.reshape(shape)


class Tensor:
    """A numpy-backed tensor that records operations for backpropagation."""

    __slots__ = ("data", "grad", "requires_grad", "_backward", "_parents", "name")

    def __init__(
        self,
        data: ArrayLike,
        requires_grad: bool = False,
        parents: Tuple["Tensor", ...] = (),
        backward: Optional[Callable[[np.ndarray], None]] = None,
        name: str = "",
    ):
        self.data = _as_array(data)
        self.grad: Optional[np.ndarray] = None
        self.requires_grad = bool(requires_grad) and _GRAD_ENABLED
        self._parents = parents if self.requires_grad else ()
        self._backward = backward if self.requires_grad else None
        self.name = name

    # ------------------------------------------------------------------
    # basic introspection
    # ------------------------------------------------------------------
    @property
    def shape(self) -> Tuple[int, ...]:
        return self.data.shape

    @property
    def ndim(self) -> int:
        return self.data.ndim

    @property
    def size(self) -> int:
        return self.data.size

    @property
    def dtype(self):
        return self.data.dtype

    def __len__(self) -> int:
        return len(self.data)

    def __repr__(self) -> str:
        grad_flag = ", requires_grad=True" if self.requires_grad else ""
        return f"Tensor(shape={self.shape}{grad_flag})"

    def numpy(self) -> np.ndarray:
        """Return the underlying array (no copy)."""
        return self.data

    def item(self) -> float:
        return float(self.data.reshape(-1)[0]) if self.data.size == 1 else float(self.data)

    def detach(self) -> "Tensor":
        """Return a view of this tensor cut from the autograd graph."""
        return Tensor(self.data, requires_grad=False)

    def zero_grad(self) -> None:
        self.grad = None

    # ------------------------------------------------------------------
    # graph construction helper
    # ------------------------------------------------------------------
    @staticmethod
    def _make(
        data: np.ndarray,
        parents: Tuple["Tensor", ...],
        backward: Callable[[np.ndarray], None],
    ) -> "Tensor":
        requires = _GRAD_ENABLED and any(p.requires_grad for p in parents)
        out = Tensor(data, requires_grad=requires)
        if requires:
            out._parents = tuple(p for p in parents if p.requires_grad)
            out._backward = backward
        return out

    def _accumulate(self, grad: np.ndarray) -> None:
        grad = _unbroadcast(np.asarray(grad, dtype=self.data.dtype), self.data.shape)
        if self.grad is None:
            self.grad = grad.copy()
        else:
            self.grad += grad

    # ------------------------------------------------------------------
    # backward pass
    # ------------------------------------------------------------------
    def backward(self, grad: Optional[ArrayLike] = None) -> None:
        """Backpropagate from this tensor through the recorded graph."""
        if not self.requires_grad:
            raise RuntimeError("backward() called on a tensor that does not require grad")
        if grad is None:
            if self.data.size != 1:
                raise RuntimeError("grad must be supplied for non-scalar outputs")
            grad = np.ones_like(self.data)
        self.grad = _as_array(grad, dtype=self.data.dtype).reshape(self.data.shape)

        topo: list[Tensor] = []
        visited = set()

        def visit(node: "Tensor") -> None:
            stack = [(node, iter(node._parents))]
            visited.add(id(node))
            while stack:
                current, parents = stack[-1]
                advanced = False
                for parent in parents:
                    if id(parent) not in visited:
                        visited.add(id(parent))
                        stack.append((parent, iter(parent._parents)))
                        advanced = True
                        break
                if not advanced:
                    topo.append(current)
                    stack.pop()

        visit(self)
        for node in reversed(topo):
            if node._backward is not None and node.grad is not None:
                node._backward(node.grad)

    # ------------------------------------------------------------------
    # arithmetic
    # ------------------------------------------------------------------
    def _coerce(self, other: ArrayLike) -> "Tensor":
        return other if isinstance(other, Tensor) else Tensor(other)

    def __add__(self, other: ArrayLike) -> "Tensor":
        other = self._coerce(other)
        out_data = self.data + other.data

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(grad)
            if other.requires_grad:
                other._accumulate(grad)

        return Tensor._make(out_data, (self, other), backward)

    __radd__ = __add__

    def __neg__(self) -> "Tensor":
        def backward(grad: np.ndarray) -> None:
            self._accumulate(-grad)

        return Tensor._make(-self.data, (self,), backward)

    def __sub__(self, other: ArrayLike) -> "Tensor":
        other = self._coerce(other)
        out_data = self.data - other.data

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(grad)
            if other.requires_grad:
                other._accumulate(-grad)

        return Tensor._make(out_data, (self, other), backward)

    def __rsub__(self, other: ArrayLike) -> "Tensor":
        return self._coerce(other).__sub__(self)

    def __mul__(self, other: ArrayLike) -> "Tensor":
        other = self._coerce(other)
        out_data = self.data * other.data

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(grad * other.data)
            if other.requires_grad:
                other._accumulate(grad * self.data)

        return Tensor._make(out_data, (self, other), backward)

    __rmul__ = __mul__

    def __truediv__(self, other: ArrayLike) -> "Tensor":
        other = self._coerce(other)
        out_data = self.data / other.data

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(grad / other.data)
            if other.requires_grad:
                other._accumulate(-grad * self.data / (other.data * other.data))

        return Tensor._make(out_data, (self, other), backward)

    def __rtruediv__(self, other: ArrayLike) -> "Tensor":
        return self._coerce(other).__truediv__(self)

    def __pow__(self, exponent: float) -> "Tensor":
        if not isinstance(exponent, (int, float)):
            raise TypeError("only scalar exponents are supported")
        out_data = self.data ** exponent

        def backward(grad: np.ndarray) -> None:
            self._accumulate(grad * exponent * self.data ** (exponent - 1))

        return Tensor._make(out_data, (self,), backward)

    def __matmul__(self, other: "Tensor") -> "Tensor":
        return self.matmul(other)

    def matmul(self, other: "Tensor") -> "Tensor":
        """Batched matrix multiplication with full broadcasting on batch dims."""
        other = self._coerce(other)
        out_data = self.data @ other.data

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                if other.data.ndim == 1:
                    grad_self = np.expand_dims(grad, -1) * other.data
                else:
                    grad_self = grad @ np.swapaxes(other.data, -1, -2)
                self._accumulate(_unbroadcast(grad_self, self.data.shape))
            if other.requires_grad:
                if self.data.ndim == 1:
                    grad_other = np.outer(self.data, grad)
                else:
                    grad_other = np.swapaxes(self.data, -1, -2) @ grad
                other._accumulate(_unbroadcast(grad_other, other.data.shape))

        return Tensor._make(out_data, (self, other), backward)

    # ------------------------------------------------------------------
    # reductions
    # ------------------------------------------------------------------
    def sum(self, axis=None, keepdims: bool = False) -> "Tensor":
        out_data = self.data.sum(axis=axis, keepdims=keepdims)

        def backward(grad: np.ndarray) -> None:
            g = grad
            if axis is not None and not keepdims:
                g = np.expand_dims(g, axis)
            self._accumulate(np.broadcast_to(g, self.data.shape))

        return Tensor._make(out_data, (self,), backward)

    def mean(self, axis=None, keepdims: bool = False) -> "Tensor":
        if axis is None:
            count = self.data.size
        else:
            axes = axis if isinstance(axis, tuple) else (axis,)
            count = int(np.prod([self.data.shape[a] for a in axes]))
        return self.sum(axis=axis, keepdims=keepdims) * (1.0 / count)

    def var(self, axis=None, keepdims: bool = False) -> "Tensor":
        mu = self.mean(axis=axis, keepdims=True)
        diff = self - mu
        return (diff * diff).mean(axis=axis, keepdims=keepdims)

    def max(self, axis=None, keepdims: bool = False) -> "Tensor":
        out_data = self.data.max(axis=axis, keepdims=keepdims)

        def backward(grad: np.ndarray) -> None:
            g = grad
            out = out_data
            if axis is not None and not keepdims:
                g = np.expand_dims(g, axis)
                out = np.expand_dims(out, axis)
            mask = (self.data == out).astype(self.data.dtype)
            # Split gradient between ties, matching the subgradient convention.
            counts = mask.sum(axis=axis, keepdims=True) if axis is not None else mask.sum()
            self._accumulate(g * mask / counts)

        return Tensor._make(out_data, (self,), backward)

    # ------------------------------------------------------------------
    # elementwise transcendentals
    # ------------------------------------------------------------------
    def exp(self) -> "Tensor":
        out_data = np.exp(self.data)

        def backward(grad: np.ndarray) -> None:
            self._accumulate(grad * out_data)

        return Tensor._make(out_data, (self,), backward)

    def log(self) -> "Tensor":
        out_data = np.log(self.data)

        def backward(grad: np.ndarray) -> None:
            self._accumulate(grad / self.data)

        return Tensor._make(out_data, (self,), backward)

    def sqrt(self) -> "Tensor":
        out_data = np.sqrt(self.data)

        def backward(grad: np.ndarray) -> None:
            self._accumulate(grad * 0.5 / out_data)

        return Tensor._make(out_data, (self,), backward)

    def tanh(self) -> "Tensor":
        out_data = np.tanh(self.data)

        def backward(grad: np.ndarray) -> None:
            self._accumulate(grad * (1.0 - out_data * out_data))

        return Tensor._make(out_data, (self,), backward)

    def abs(self) -> "Tensor":
        out_data = np.abs(self.data)

        def backward(grad: np.ndarray) -> None:
            self._accumulate(grad * np.sign(self.data))

        return Tensor._make(out_data, (self,), backward)

    def clamp(self, low: float, high: float) -> "Tensor":
        """Clip values into ``[low, high]``; gradient is zero outside the range.

        This is the differentiable clamp used by the clipped quantizers
        (Eq. 1 of the paper): gradients flow only where the input is inside
        the clip window, which is exactly how the clip thresholds make
        low-bitwidth quantization trainable.
        """
        out_data = np.clip(self.data, low, high)

        def backward(grad: np.ndarray) -> None:
            mask = ((self.data >= low) & (self.data <= high)).astype(self.data.dtype)
            self._accumulate(grad * mask)

        return Tensor._make(out_data, (self,), backward)

    # ------------------------------------------------------------------
    # shape manipulation
    # ------------------------------------------------------------------
    def reshape(self, *shape) -> "Tensor":
        if len(shape) == 1 and isinstance(shape[0], (tuple, list)):
            shape = tuple(shape[0])
        out_data = self.data.reshape(shape)
        original = self.data.shape

        def backward(grad: np.ndarray) -> None:
            self._accumulate(grad.reshape(original))

        return Tensor._make(out_data, (self,), backward)

    def transpose(self, *axes) -> "Tensor":
        if not axes:
            axes = tuple(reversed(range(self.data.ndim)))
        elif len(axes) == 1 and isinstance(axes[0], (tuple, list)):
            axes = tuple(axes[0])
        out_data = self.data.transpose(axes)
        inverse = tuple(np.argsort(axes))

        def backward(grad: np.ndarray) -> None:
            self._accumulate(grad.transpose(inverse))

        return Tensor._make(out_data, (self,), backward)

    def swapaxes(self, a: int, b: int) -> "Tensor":
        axes = list(range(self.data.ndim))
        axes[a], axes[b] = axes[b], axes[a]
        return self.transpose(tuple(axes))

    def __getitem__(self, index) -> "Tensor":
        out_data = self.data[index]

        def backward(grad: np.ndarray) -> None:
            full = np.zeros_like(self.data)
            np.add.at(full, index, grad)
            self._accumulate(full)

        return Tensor._make(out_data, (self,), backward)


def concatenate(tensors: Sequence[Tensor], axis: int = -1) -> Tensor:
    """Differentiable concatenation along ``axis``."""
    tensors = [t if isinstance(t, Tensor) else Tensor(t) for t in tensors]
    out_data = np.concatenate([t.data for t in tensors], axis=axis)
    sizes = [t.data.shape[axis] for t in tensors]
    offsets = np.cumsum([0] + sizes)

    def backward(grad: np.ndarray) -> None:
        for tensor, start, stop in zip(tensors, offsets[:-1], offsets[1:]):
            if tensor.requires_grad:
                slicer = [slice(None)] * grad.ndim
                slicer[axis] = slice(start, stop)
                tensor._accumulate(grad[tuple(slicer)])

    return Tensor._make(out_data, tuple(tensors), backward)


def stack(tensors: Sequence[Tensor], axis: int = 0) -> Tensor:
    """Differentiable stack along a new ``axis``."""
    tensors = [t if isinstance(t, Tensor) else Tensor(t) for t in tensors]
    out_data = np.stack([t.data for t in tensors], axis=axis)

    def backward(grad: np.ndarray) -> None:
        parts = np.split(grad, len(tensors), axis=axis)
        for tensor, part in zip(tensors, parts):
            if tensor.requires_grad:
                tensor._accumulate(np.squeeze(part, axis=axis))

    return Tensor._make(out_data, tuple(tensors), backward)


def where(condition: np.ndarray, a: Tensor, b: Tensor) -> Tensor:
    """Differentiable select: ``condition ? a : b`` (condition is constant)."""
    a = a if isinstance(a, Tensor) else Tensor(a)
    b = b if isinstance(b, Tensor) else Tensor(b)
    cond = np.asarray(condition, dtype=bool)
    out_data = np.where(cond, a.data, b.data)

    def backward(grad: np.ndarray) -> None:
        if a.requires_grad:
            a._accumulate(np.where(cond, grad, 0.0))
        if b.requires_grad:
            b._accumulate(np.where(cond, 0.0, grad))

    return Tensor._make(out_data, (a, b), backward)
