"""Differentiable neural-network primitives built on :mod:`repro.autograd.tensor`.

These are the building blocks the BERT implementation and the QAT flow use:
activations, normalization, attention-flavoured softmax, losses, dropout,
embedding lookup, and the straight-through-estimator (STE) ops that make
fake quantization trainable.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from .tensor import Tensor, is_grad_enabled

_SQRT_2_OVER_PI = float(np.sqrt(2.0 / np.pi))


def relu(x: Tensor) -> Tensor:
    """Rectified linear unit."""
    out_data = np.maximum(x.data, 0.0)

    def backward(grad: np.ndarray) -> None:
        x._accumulate(grad * (x.data > 0))

    return Tensor._make(out_data, (x,), backward)


def gelu(x: Tensor) -> Tensor:
    """Gaussian error linear unit (tanh approximation, as used by BERT).

    ``gelu(x) = 0.5 x (1 + tanh(sqrt(2/pi) (x + 0.044715 x^3)))``
    """
    x3 = x * x * x
    inner = (x + x3 * 0.044715) * _SQRT_2_OVER_PI
    return x * (inner.tanh() + 1.0) * 0.5


def sigmoid(x: Tensor) -> Tensor:
    """Numerically stable logistic sigmoid."""
    out_data = np.where(
        x.data >= 0,
        1.0 / (1.0 + np.exp(-np.abs(x.data))),
        np.exp(-np.abs(x.data)) / (1.0 + np.exp(-np.abs(x.data))),
    ).astype(x.data.dtype)

    def backward(grad: np.ndarray) -> None:
        x._accumulate(grad * out_data * (1.0 - out_data))

    return Tensor._make(out_data, (x,), backward)


def softmax(x: Tensor, axis: int = -1) -> Tensor:
    """Softmax along ``axis`` with the max-subtraction stabilisation.

    The max-subtraction here is the same invariance the paper's hardware
    softmax core exploits: subtracting the row max bounds exp() outputs to
    (0, 1], which is what makes a 256-entry lookup table sufficient.
    """
    shifted = x.data - x.data.max(axis=axis, keepdims=True)
    exp = np.exp(shifted)
    out_data = exp / exp.sum(axis=axis, keepdims=True)

    def backward(grad: np.ndarray) -> None:
        dot = (grad * out_data).sum(axis=axis, keepdims=True)
        x._accumulate(out_data * (grad - dot))

    return Tensor._make(out_data, (x,), backward)


def log_softmax(x: Tensor, axis: int = -1) -> Tensor:
    """Log-softmax along ``axis`` (stable form)."""
    shifted = x.data - x.data.max(axis=axis, keepdims=True)
    log_norm = np.log(np.exp(shifted).sum(axis=axis, keepdims=True))
    out_data = shifted - log_norm
    softmax_data = np.exp(out_data)

    def backward(grad: np.ndarray) -> None:
        x._accumulate(grad - softmax_data * grad.sum(axis=axis, keepdims=True))

    return Tensor._make(out_data, (x,), backward)


def cross_entropy(logits: Tensor, labels: np.ndarray) -> Tensor:
    """Mean cross-entropy between ``logits`` (batch, classes) and int labels."""
    labels = np.asarray(labels)
    if logits.ndim != 2:
        raise ValueError(f"logits must be 2-D (batch, classes), got {logits.shape}")
    log_probs = log_softmax(logits, axis=-1)
    batch = logits.shape[0]
    picked = log_probs[np.arange(batch), labels]
    return -picked.mean()


def dropout(x: Tensor, p: float, training: bool) -> Tensor:
    """Inverted dropout; identity when ``training`` is False or ``p == 0``."""
    if not training or p <= 0.0:
        return x
    keep = 1.0 - p
    mask = (np.random.random(x.shape) < keep).astype(x.data.dtype) / keep
    return x * Tensor(mask)


def layer_norm(
    x: Tensor,
    weight: Tensor,
    bias: Tensor,
    eps: float = 1e-5,
) -> Tensor:
    """Layer normalization over the last dimension.

    Matches the LN blocks after attention and FFN in BERT.  The accelerator
    maps this to the 3-stage SIMD LN core; numerically both compute
    ``weight * (x - mean) / sqrt(var + eps) + bias``.
    """
    mu = x.mean(axis=-1, keepdims=True)
    centered = x - mu
    variance = (centered * centered).mean(axis=-1, keepdims=True)
    inv_std = (variance + eps) ** -0.5
    return centered * inv_std * weight + bias


def embedding(weight: Tensor, indices: np.ndarray) -> Tensor:
    """Row lookup ``weight[indices]`` with sparse gradient accumulation."""
    indices = np.asarray(indices, dtype=np.int64)
    out_data = weight.data[indices]

    def backward(grad: np.ndarray) -> None:
        full = np.zeros_like(weight.data)
        np.add.at(full, indices, grad)
        weight._accumulate(full)

    return Tensor._make(out_data, (weight,), backward)


def linear(x: Tensor, weight: Tensor, bias: Optional[Tensor] = None) -> Tensor:
    """Affine map ``x @ weight.T + bias`` (PyTorch weight layout)."""
    out = x.matmul(weight.transpose())
    if bias is not None:
        out = out + bias
    return out


# ----------------------------------------------------------------------
# Straight-through estimator ops (the hooks QAT needs)
# ----------------------------------------------------------------------

def ste_round(x: Tensor) -> Tensor:
    """Round-to-nearest-even whose gradient is the identity.

    Rounding has zero gradient almost everywhere; the straight-through
    estimator pretends it is the identity so that fake-quantized weights
    still receive useful gradients during QAT.  ``np.rint`` implements the
    round-half-to-even convention, matching the ⌊·⌉ operator in Eq. 1.
    """
    out_data = np.rint(x.data)

    def backward(grad: np.ndarray) -> None:
        x._accumulate(grad)

    return Tensor._make(out_data, (x,), backward)


def ste_floor(x: Tensor) -> Tensor:
    """Floor with identity gradient (used by fixed-point truncation tests)."""
    out_data = np.floor(x.data)

    def backward(grad: np.ndarray) -> None:
        x._accumulate(grad)

    return Tensor._make(out_data, (x,), backward)


def fake_quantize(x: Tensor, scale, qmin: int, qmax: int) -> Tensor:
    """Simulated quantization ``clamp(round(x * scale), qmin, qmax) / scale``.

    Combines STE rounding with a hard integer-range clamp.  Gradients pass
    through where the quantized code lies strictly inside the representable
    range and are cut where the value saturates — the standard QAT rule that
    lets clipped values stop contributing noise.

    ``scale`` may be a scalar (per-tensor) or an array broadcastable to
    ``x`` (per-channel weight quantization).
    """
    scale = np.asarray(scale, dtype=np.float64)
    if np.any(scale <= 0):
        raise ValueError("scale must be positive")
    if scale.ndim == 0:
        scale = float(scale)
    scaled = x.data * scale
    codes = np.clip(np.rint(scaled), qmin, qmax)
    out_data = (codes / scale).astype(x.data.dtype)

    def backward(grad: np.ndarray) -> None:
        mask = ((scaled >= qmin - 0.5) & (scaled <= qmax + 0.5)).astype(x.data.dtype)
        x._accumulate(grad * mask)

    if not is_grad_enabled() or not x.requires_grad:
        return Tensor(out_data)
    return Tensor._make(out_data, (x,), backward)
