"""Standard layers: Linear, Embedding, LayerNorm, Dropout, activations."""

from __future__ import annotations

from typing import Optional

import numpy as np

from .. import functional as F
from ..tensor import Tensor
from .module import Module, Parameter


def _kaiming_uniform(fan_in: int, shape, rng: np.random.Generator) -> np.ndarray:
    bound = float(np.sqrt(1.0 / fan_in))
    return rng.uniform(-bound, bound, size=shape).astype(np.float32)


class Linear(Module):
    """Affine layer ``y = x W^T + b`` with PyTorch-style weight layout.

    ``weight`` has shape ``(out_features, in_features)`` so that quantization
    code (per-tensor weight scales, bias folding) matches the conventions in
    the paper's PyTorch implementation.
    """

    def __init__(
        self,
        in_features: int,
        out_features: int,
        bias: bool = True,
        rng: Optional[np.random.Generator] = None,
    ):
        super().__init__()
        rng = rng or np.random.default_rng()
        self.in_features = in_features
        self.out_features = out_features
        self.weight = Parameter(_kaiming_uniform(in_features, (out_features, in_features), rng))
        if bias:
            self.bias = Parameter(np.zeros(out_features, dtype=np.float32))
        else:
            self.bias = None  # type: ignore[assignment]

    def forward(self, x: Tensor) -> Tensor:
        return F.linear(x, self.weight, self.bias)

    def __repr__(self) -> str:
        return f"Linear(in={self.in_features}, out={self.out_features})"


class Embedding(Module):
    """Lookup table mapping integer ids to dense vectors."""

    def __init__(
        self,
        num_embeddings: int,
        embedding_dim: int,
        rng: Optional[np.random.Generator] = None,
    ):
        super().__init__()
        rng = rng or np.random.default_rng()
        self.num_embeddings = num_embeddings
        self.embedding_dim = embedding_dim
        self.weight = Parameter(
            rng.normal(0.0, 0.02, size=(num_embeddings, embedding_dim)).astype(np.float32)
        )

    def forward(self, indices: np.ndarray) -> Tensor:
        indices = np.asarray(indices)
        if indices.size and (indices.min() < 0 or indices.max() >= self.num_embeddings):
            raise IndexError(
                f"embedding index out of range [0, {self.num_embeddings}): "
                f"[{indices.min()}, {indices.max()}]"
            )
        return F.embedding(self.weight, indices)

    def __repr__(self) -> str:
        return f"Embedding(num={self.num_embeddings}, dim={self.embedding_dim})"


class LayerNorm(Module):
    """Layer normalization over the last dimension with affine parameters."""

    def __init__(self, normalized_shape: int, eps: float = 1e-5):
        super().__init__()
        self.normalized_shape = normalized_shape
        self.eps = eps
        self.weight = Parameter(np.ones(normalized_shape, dtype=np.float32))
        self.bias = Parameter(np.zeros(normalized_shape, dtype=np.float32))

    def forward(self, x: Tensor) -> Tensor:
        return F.layer_norm(x, self.weight, self.bias, eps=self.eps)

    def __repr__(self) -> str:
        return f"LayerNorm({self.normalized_shape})"


class Dropout(Module):
    """Inverted dropout; active only in training mode."""

    def __init__(self, p: float = 0.1):
        super().__init__()
        if not 0.0 <= p < 1.0:
            raise ValueError(f"dropout probability must be in [0, 1), got {p}")
        self.p = p

    def forward(self, x: Tensor) -> Tensor:
        return F.dropout(x, self.p, self.training)

    def __repr__(self) -> str:
        return f"Dropout(p={self.p})"


class GELU(Module):
    """GELU activation module (tanh approximation)."""

    def forward(self, x: Tensor) -> Tensor:
        return F.gelu(x)


class ReLU(Module):
    """ReLU activation module."""

    def forward(self, x: Tensor) -> Tensor:
        return F.relu(x)


class Tanh(Module):
    """Tanh activation module."""

    def forward(self, x: Tensor) -> Tensor:
        return x.tanh()
