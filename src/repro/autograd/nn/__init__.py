"""Module system and standard layers for the autograd engine."""

from .layers import GELU, Dropout, Embedding, LayerNorm, Linear, ReLU, Tanh
from .module import Module, ModuleList, Parameter, Sequential

__all__ = [
    "Module",
    "ModuleList",
    "Parameter",
    "Sequential",
    "Linear",
    "Embedding",
    "LayerNorm",
    "Dropout",
    "GELU",
    "ReLU",
    "Tanh",
]
