"""Minimal module system: parameter registration, training mode, state dicts.

The interface intentionally mirrors ``torch.nn.Module`` so the BERT and QAT
code reads like the PyTorch flow the paper used.
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Optional, Tuple

import numpy as np

from ..tensor import Tensor


class Parameter(Tensor):
    """A tensor that is registered as a trainable parameter."""

    def __init__(self, data, name: str = ""):
        super().__init__(data, requires_grad=True, name=name)


class Module:
    """Base class for all neural-network modules.

    Subclasses assign :class:`Parameter` and :class:`Module` instances as
    attributes; those are discovered automatically for ``parameters()``,
    ``state_dict()`` and mode switching.
    """

    def __init__(self):
        self._parameters: Dict[str, Parameter] = {}
        self._modules: Dict[str, "Module"] = {}
        self._buffers: Dict[str, np.ndarray] = {}
        self.training = True

    # ------------------------------------------------------------------
    # attribute-based registration
    # ------------------------------------------------------------------
    def __setattr__(self, name: str, value) -> None:
        if isinstance(value, Parameter):
            self.__dict__.setdefault("_parameters", {})[name] = value
            self.__dict__.pop(name, None)
        elif isinstance(value, Module):
            self.__dict__.setdefault("_modules", {})[name] = value
            self.__dict__.pop(name, None)
        else:
            object.__setattr__(self, name, value)

    def __getattr__(self, name: str):
        parameters = self.__dict__.get("_parameters", {})
        if name in parameters:
            return parameters[name]
        modules = self.__dict__.get("_modules", {})
        if name in modules:
            return modules[name]
        buffers = self.__dict__.get("_buffers", {})
        if name in buffers:
            return buffers[name]
        raise AttributeError(f"{type(self).__name__} has no attribute {name!r}")

    def register_buffer(self, name: str, value: np.ndarray) -> None:
        """Register non-trainable state saved in ``state_dict`` (e.g. EMA stats)."""
        self._buffers[name] = np.asarray(value)

    def set_buffer(self, name: str, value: np.ndarray) -> None:
        if name not in self._buffers:
            raise KeyError(f"no buffer named {name!r}")
        self._buffers[name] = np.asarray(value)

    # ------------------------------------------------------------------
    # traversal
    # ------------------------------------------------------------------
    def named_parameters(self, prefix: str = "") -> Iterator[Tuple[str, Parameter]]:
        for name, param in self._parameters.items():
            yield prefix + name, param
        for name, module in self._modules.items():
            yield from module.named_parameters(prefix + name + ".")

    def parameters(self) -> List[Parameter]:
        return [p for _, p in self.named_parameters()]

    def named_modules(self, prefix: str = "") -> Iterator[Tuple[str, "Module"]]:
        yield prefix.rstrip("."), self
        for name, module in self._modules.items():
            yield from module.named_modules(prefix + name + ".")

    def modules(self) -> Iterator["Module"]:
        for _, module in self.named_modules():
            yield module

    def children(self) -> Iterator["Module"]:
        yield from self._modules.values()

    def named_buffers(self, prefix: str = "") -> Iterator[Tuple[str, np.ndarray]]:
        for name, buf in self._buffers.items():
            yield prefix + name, buf
        for name, module in self._modules.items():
            yield from module.named_buffers(prefix + name + ".")

    # ------------------------------------------------------------------
    # modes / grads
    # ------------------------------------------------------------------
    def train(self, mode: bool = True) -> "Module":
        self.training = mode
        for module in self._modules.values():
            module.train(mode)
        return self

    def eval(self) -> "Module":
        return self.train(False)

    def zero_grad(self) -> None:
        for param in self.parameters():
            param.zero_grad()

    # ------------------------------------------------------------------
    # serialization
    # ------------------------------------------------------------------
    def state_dict(self) -> Dict[str, np.ndarray]:
        state = {name: param.data.copy() for name, param in self.named_parameters()}
        for name, buf in self.named_buffers():
            state[name] = np.asarray(buf).copy()
        return state

    def load_state_dict(self, state: Dict[str, np.ndarray]) -> None:
        own_params = dict(self.named_parameters())
        own_buffers = dict(self.named_buffers())
        for name, value in state.items():
            if name in own_params:
                param = own_params[name]
                if param.data.shape != value.shape:
                    raise ValueError(
                        f"shape mismatch for {name}: {param.data.shape} vs {value.shape}"
                    )
                param.data = value.astype(param.data.dtype).copy()
            elif name in own_buffers:
                self._set_buffer_by_path(name, value)
            else:
                raise KeyError(f"unexpected key in state_dict: {name!r}")

    def _set_buffer_by_path(self, path: str, value: np.ndarray) -> None:
        parts = path.split(".")
        module: Module = self
        for part in parts[:-1]:
            module = module._modules[part]
        module._buffers[parts[-1]] = np.asarray(value).copy()

    # ------------------------------------------------------------------
    # call protocol
    # ------------------------------------------------------------------
    def forward(self, *args, **kwargs):
        raise NotImplementedError

    def __call__(self, *args, **kwargs):
        return self.forward(*args, **kwargs)

    def num_parameters(self) -> int:
        """Total number of scalar trainable parameters."""
        return sum(p.size for p in self.parameters())


class ModuleList(Module):
    """Hold submodules in a list, registering each for traversal."""

    def __init__(self, modules: Optional[List[Module]] = None):
        super().__init__()
        self._list: List[Module] = []
        for module in modules or []:
            self.append(module)

    def append(self, module: Module) -> "ModuleList":
        index = len(self._list)
        self._list.append(module)
        self._modules[str(index)] = module
        return self

    def __iter__(self) -> Iterator[Module]:
        return iter(self._list)

    def __len__(self) -> int:
        return len(self._list)

    def __getitem__(self, index: int) -> Module:
        return self._list[index]


class Sequential(Module):
    """Apply submodules in order."""

    def __init__(self, *modules: Module):
        super().__init__()
        self._list: List[Module] = []
        for index, module in enumerate(modules):
            self._list.append(module)
            self._modules[str(index)] = module

    def forward(self, x):
        for module in self._list:
            x = module(x)
        return x

    def __iter__(self) -> Iterator[Module]:
        return iter(self._list)

    def __len__(self) -> int:
        return len(self._list)

    def __getitem__(self, index: int) -> Module:
        return self._list[index]
