"""A minimal numpy autograd engine (substrate for the FQ-BERT reproduction).

Public surface:

- :class:`Tensor` — numpy-backed tensor with reverse-mode autodiff
- :mod:`repro.autograd.functional` — NN primitives (softmax, gelu, ...)
- :mod:`repro.autograd.nn` — module system and standard layers
- :mod:`repro.autograd.optim` — SGD/Adam/AdamW and LR schedules
"""

from . import functional
from . import optim
from .tensor import Tensor, concatenate, no_grad, stack, where

__all__ = [
    "Tensor",
    "concatenate",
    "stack",
    "where",
    "no_grad",
    "functional",
    "optim",
]
