"""Optimizers for QAT fine-tuning: SGD (with momentum), Adam, and AdamW.

The paper fine-tunes BERT with the default (Adam-style) hyper-parameters; we
provide the same family plus gradient clipping, which stabilises training of
the low-bitwidth configurations in the Figure 3 sweep.
"""

from __future__ import annotations

from typing import Iterable, List, Optional

import numpy as np

from .tensor import Tensor


class Optimizer:
    """Base class holding the parameter list and a ``zero_grad`` helper."""

    def __init__(self, params: Iterable[Tensor]):
        self.params: List[Tensor] = [p for p in params if p.requires_grad]
        if not self.params:
            raise ValueError("optimizer received no trainable parameters")

    def zero_grad(self) -> None:
        for param in self.params:
            param.grad = None

    def step(self) -> None:
        raise NotImplementedError


class SGD(Optimizer):
    """Stochastic gradient descent with optional momentum and weight decay."""

    def __init__(
        self,
        params: Iterable[Tensor],
        lr: float = 0.01,
        momentum: float = 0.0,
        weight_decay: float = 0.0,
    ):
        super().__init__(params)
        if lr <= 0:
            raise ValueError(f"lr must be positive, got {lr}")
        self.lr = lr
        self.momentum = momentum
        self.weight_decay = weight_decay
        self._velocity = [np.zeros_like(p.data) for p in self.params]

    def step(self) -> None:
        for param, velocity in zip(self.params, self._velocity):
            if param.grad is None:
                continue
            grad = param.grad
            if self.weight_decay:
                grad = grad + self.weight_decay * param.data
            if self.momentum:
                velocity *= self.momentum
                velocity += grad
                grad = velocity
            param.data -= self.lr * grad


class Adam(Optimizer):
    """Adam optimizer (Kingma & Ba) with bias-corrected moment estimates."""

    def __init__(
        self,
        params: Iterable[Tensor],
        lr: float = 1e-3,
        betas: tuple = (0.9, 0.999),
        eps: float = 1e-8,
        weight_decay: float = 0.0,
    ):
        super().__init__(params)
        if lr <= 0:
            raise ValueError(f"lr must be positive, got {lr}")
        self.lr = lr
        self.beta1, self.beta2 = betas
        self.eps = eps
        self.weight_decay = weight_decay
        self._step = 0
        self._m = [np.zeros_like(p.data) for p in self.params]
        self._v = [np.zeros_like(p.data) for p in self.params]

    def step(self) -> None:
        self._step += 1
        bias1 = 1.0 - self.beta1 ** self._step
        bias2 = 1.0 - self.beta2 ** self._step
        for param, m, v in zip(self.params, self._m, self._v):
            if param.grad is None:
                continue
            grad = param.grad
            if self.weight_decay:
                grad = grad + self.weight_decay * param.data
            m *= self.beta1
            m += (1.0 - self.beta1) * grad
            v *= self.beta2
            v += (1.0 - self.beta2) * grad * grad
            m_hat = m / bias1
            v_hat = v / bias2
            param.data -= self.lr * m_hat / (np.sqrt(v_hat) + self.eps)


class AdamW(Adam):
    """Adam with decoupled weight decay (the BERT fine-tuning default)."""

    def step(self) -> None:
        if self.weight_decay:
            for param in self.params:
                if param.grad is not None:
                    param.data -= self.lr * self.weight_decay * param.data
        decay, self.weight_decay = self.weight_decay, 0.0
        try:
            super().step()
        finally:
            self.weight_decay = decay


def clip_grad_norm(params: Iterable[Tensor], max_norm: float) -> float:
    """Scale gradients so their global L2 norm is at most ``max_norm``.

    Returns the pre-clipping norm, matching ``torch.nn.utils.clip_grad_norm_``.
    """
    params = [p for p in params if p.grad is not None]
    total = float(np.sqrt(sum(float((p.grad ** 2).sum()) for p in params)))
    if total > max_norm and total > 0:
        scale = max_norm / total
        for param in params:
            param.grad *= scale
    return total


class LinearWarmupSchedule:
    """Linear warmup then linear decay, the standard BERT LR schedule."""

    def __init__(self, optimizer: Optimizer, warmup_steps: int, total_steps: int):
        if total_steps <= 0:
            raise ValueError("total_steps must be positive")
        self.optimizer = optimizer
        self.warmup_steps = max(0, warmup_steps)
        self.total_steps = total_steps
        self.base_lr = optimizer.lr
        self._step = 0

    def step(self) -> float:
        """Advance one step and return the new learning rate."""
        self._step += 1
        if self.warmup_steps and self._step <= self.warmup_steps:
            factor = self._step / self.warmup_steps
        else:
            remaining = max(0, self.total_steps - self._step)
            denom = max(1, self.total_steps - self.warmup_steps)
            factor = remaining / denom
        self.optimizer.lr = self.base_lr * factor
        return self.optimizer.lr
