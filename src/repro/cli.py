"""Command-line interface for the FQ-BERT reproduction.

Subcommands::

    python -m repro.cli train     --task sst2 --out model.npz
    python -m repro.cli quantize  --checkpoint model.npz --out fq.npz [--ptq]
    python -m repro.cli evaluate  --checkpoint fq.npz --task sst2 [--integer]
    python -m repro.cli simulate  --device ZCU102 --pes 8 --multipliers 16
    python -m repro.cli compare   # Table IV style platform comparison
    python -m repro.cli serve     --requests 64 --batch-size 8 --num-devices 2
    python -m repro.cli loadtest  --scenario flash-crowd --replicas 2 [--autoscale] [--analytic]
    python -m repro.cli loadtest  --scenario flash-crowd --columnar --shards 4 --rate-scale 640
    python -m repro.cli loadtest  --scenario flash-crowd --metrics-out m.prom --trace-out t.json --windows w.jsonl
    python -m repro.cli loadtest  --scenario flash-crowd --chaos-plan plan.json --retries 2 --breaker --brownout
    python -m repro.cli metrics   --prom m.prom [--windows w.jsonl] [--trace t.json]
    python -m repro.cli search    --space table3 [--scenario flash-crowd] [--json out.json]
    python -m repro.cli bench     [--quick] [--suite kernels|serve|cluster|fleet|dse|all]

Each subcommand is a thin wrapper over the library; anything the CLI does
can be done in a few lines of Python (see examples/).
"""

from __future__ import annotations

import argparse
import sys
from typing import Optional

import numpy as np


def _build_task(name: str, seed: int):
    from .data import encode_task, make_mnli_like, make_sst2_like

    if name == "sst2":
        task = make_sst2_like(768, 384, seed=seed)
        max_length = 24
    elif name == "mnli":
        task = make_mnli_like(1536, 384, matched=True, seed=seed)
        max_length = 40
    elif name == "mnli-mm":
        task = make_mnli_like(1536, 384, matched=False, seed=seed)
        max_length = 40
    else:
        raise SystemExit(f"unknown task {name!r} (choose sst2 / mnli / mnli-mm)")
    train, dev, tokenizer = encode_task(task, max_length=max_length)
    return task, train, dev, tokenizer, max_length


def cmd_train(args) -> int:
    from .bert import BertConfig, BertForSequenceClassification
    from .bert.io import save_checkpoint
    from .quant import train_classifier

    task, train, dev, tokenizer, max_length = _build_task(args.task, args.seed)
    config = BertConfig(
        vocab_size=len(tokenizer.vocab),
        hidden_size=args.hidden,
        num_hidden_layers=args.layers,
        num_attention_heads=args.heads,
        intermediate_size=args.hidden * 2,
        max_position_embeddings=max_length,
        hidden_dropout_prob=0.0,
        attention_dropout_prob=0.0,
        num_labels=task.num_labels,
    )
    model = BertForSequenceClassification(config, rng=np.random.default_rng(args.seed))
    result = train_classifier(
        model, train, dev, epochs=args.epochs, lr=args.lr, seed=args.seed
    )
    print(f"dev accuracy: {result.final_accuracy:.2f}%")
    save_checkpoint(model, args.out, kind="bert")
    print(f"checkpoint written to {args.out}")
    return 0


def cmd_quantize(args) -> int:
    from .bert.io import load_checkpoint, save_checkpoint
    from .quant import QuantConfig, evaluate, quantize_model, train_classifier
    from .quant.ptq import post_training_quantize

    model, kind = load_checkpoint(args.checkpoint)
    if kind != "bert":
        raise SystemExit("quantize expects a float checkpoint (kind 'bert')")
    _, train, dev, _, _ = _build_task(args.task, args.seed)
    qconfig = QuantConfig.fq_bert(weight_bits=args.weight_bits, act_bits=args.act_bits)

    if args.ptq:
        quant = post_training_quantize(model, qconfig, train, rng=np.random.default_rng(1))
        print(f"PTQ accuracy: {evaluate(quant, dev):.2f}%")
    else:
        quant = quantize_model(model, qconfig, rng=np.random.default_rng(1))
        result = train_classifier(
            quant, train, dev, epochs=args.epochs, lr=args.lr, seed=args.seed + 1,
            keep_best=False,
        )
        print(f"QAT accuracy: {result.final_accuracy:.2f}%")
    save_checkpoint(quant, args.out, kind="quant")
    print(f"quantized checkpoint written to {args.out}")
    return 0


def cmd_evaluate(args) -> int:
    from .bert.io import load_checkpoint
    from .data import accuracy
    from .quant import convert_to_integer, evaluate

    model, kind = load_checkpoint(args.checkpoint)
    _, _, dev, _, _ = _build_task(args.task, args.seed)
    if args.integer:
        if kind != "quant":
            raise SystemExit("--integer needs a quantized checkpoint")
        model.eval()
        engine = convert_to_integer(model)
        batch = dev.full_batch()
        preds = engine.predict(batch.input_ids, batch.attention_mask, batch.token_type_ids)
        print(f"integer-engine accuracy: {accuracy(preds, batch.labels):.2f}%")
    else:
        print(f"accuracy: {evaluate(model, dev):.2f}%")
    return 0


def cmd_simulate(args) -> int:
    from .accel import AcceleratorConfig, AcceleratorSimulator, FPGA_DEVICES
    from .bert import BertConfig

    device = FPGA_DEVICES.get(args.device)
    if device is None:
        raise SystemExit(f"unknown device {args.device!r}; choose {sorted(FPGA_DEVICES)}")
    config = AcceleratorConfig(
        num_pus=args.pus, num_pes=args.pes, num_multipliers=args.multipliers
    )
    report = AcceleratorSimulator(config, device).simulate(
        BertConfig.base(), seq_len=args.seq_len
    )
    print(f"device: {device.name}  (H={args.pus}, N={args.pes}, M={args.multipliers})")
    print(f"latency:   {report.latency_ms:.2f} ms")
    print(f"power:     {report.power_watts:.2f} W")
    print(f"fps/W:     {report.fps_per_watt:.2f}")
    resources = report.resources
    print(
        f"resources: BRAM18K={resources.bram18k} DSP48={resources.dsp48} "
        f"FF={resources.ff} LUT={resources.lut} URAM={resources.uram}"
    )
    print(f"fits device: {report.fits_device()}")
    if args.json:
        import json
        import pathlib

        path = pathlib.Path(args.json)
        path.parent.mkdir(parents=True, exist_ok=True)
        # The same repro-design/1 shape the search explorer emits per
        # candidate, so one consumer script handles both.
        path.write_text(json.dumps(report.to_dict(), indent=2, sort_keys=True) + "\n")
        print(f"[simulate] wrote {path}")
    return 0


def cmd_compare(args) -> int:
    from .experiments import run_table4

    print(run_table4().render())
    return 0


def _parse_buckets(spec: Optional[str]):
    """Parse a ``--buckets`` flag ("16,32,64") into a sorted int tuple."""
    if spec is None:
        return None
    try:
        buckets = tuple(int(b) for b in spec.split(",") if b.strip())
    except ValueError:
        raise SystemExit(f"--buckets expects comma-separated integers, got {spec!r}")
    if not buckets:
        raise SystemExit("--buckets needs at least one length")
    return tuple(sorted(set(buckets)))


def cmd_serve(args) -> int:
    """Trace-driven serving: dynamic batching over simulated accelerators."""
    from .accel import FPGA_DEVICES
    from .data import accuracy
    from .quant import convert_to_integer
    from .serve import ServingConfig, ServingEngine, generate_trace

    device = FPGA_DEVICES.get(args.device)
    if device is None:
        raise SystemExit(f"unknown device {args.device!r}; choose {sorted(FPGA_DEVICES)}")
    task, train, dev, tokenizer, max_length = _build_task(args.task, args.seed)

    if args.checkpoint:
        from .bert.io import load_checkpoint

        quant, kind = load_checkpoint(args.checkpoint)
        if kind != "quant":
            raise SystemExit("serve expects a quantized checkpoint (kind 'quant')")
    else:
        # No checkpoint: calibration-only PTQ of a fresh model gives valid
        # frozen scales in seconds — enough to exercise the serving path.
        from .bert import BertConfig, BertForSequenceClassification
        from .quant import QuantConfig
        from .quant.ptq import post_training_quantize

        config = BertConfig(
            vocab_size=len(tokenizer.vocab),
            hidden_size=16,
            num_hidden_layers=2,
            num_attention_heads=4,
            intermediate_size=32,
            max_position_embeddings=max_length,
            hidden_dropout_prob=0.0,
            attention_dropout_prob=0.0,
            num_labels=task.num_labels,
        )
        model = BertForSequenceClassification(config, rng=np.random.default_rng(args.seed))
        quant = post_training_quantize(
            model, QuantConfig.fq_bert(), train, rng=np.random.default_rng(1)
        )
    quant.eval()
    engine_model = convert_to_integer(quant)

    buckets = _parse_buckets(args.buckets) or tuple(
        sorted({max(4, max_length // 4), max(4, max_length // 2), max_length})
    )
    engine = ServingEngine(
        engine_model,
        tokenizer,
        ServingConfig(
            max_batch_size=args.batch_size,
            max_wait_ms=args.max_wait_ms,
            buckets=buckets,
            num_devices=args.num_devices,
            cache_capacity=args.cache_size,
            slo_ms=args.slo_ms,
        ),
        device=device,
    )
    pool = [(ex.text_a, ex.text_b) for ex in task.dev]
    trace = generate_trace(
        pool,
        num_requests=args.requests,
        mean_interarrival_ms=args.mean_gap_ms,
        seed=args.seed,
    )
    results = engine.run_trace(trace)
    stats = engine.stats()
    print(
        f"serving {args.requests} requests on {args.num_devices} x {device.name} "
        f"(batch<= {args.batch_size}, wait<= {args.max_wait_ms}ms, buckets {buckets})"
    )
    print(stats.render())
    labels = {(ex.text_a, ex.text_b): ex.label for ex in task.dev}
    preds = np.array([r.prediction for r in results])
    truth = np.array([labels[(t.text_a, t.text_b)] for t in sorted(trace, key=lambda t: t.arrival_ms)])
    print(f"accuracy over trace: {accuracy(preds, truth):.2f}%")
    return 0


def _parse_failures(specs):
    """Parse ``--fail REPLICA@FAIL_MS[:RECOVER_MS]`` flags.

    Syntax errors and value errors get distinct messages: a spec that
    does not match the grammar reports the expected shape, while a spec
    that parses but is invalid (negative/NaN/inf times, recovery at or
    before the failure) surfaces :class:`FailureEvent`'s own validation
    message — ``--fail 0@nan`` should say *why* it is rejected, not just
    re-print the grammar.
    """
    from .fleet import FailureEvent

    failures = []
    for spec in specs or ():
        try:
            replica_part, times = spec.split("@", 1)
            fail_part, _, recover_part = times.partition(":")
            replica_id = int(replica_part)
            fail_ms = float(fail_part)
            recover_ms = float(recover_part) if recover_part else None
        except (ValueError, IndexError):
            raise SystemExit(
                f"--fail expects REPLICA@FAIL_MS[:RECOVER_MS], got {spec!r}"
            )
        try:
            failures.append(
                FailureEvent(
                    replica_id=replica_id, fail_ms=fail_ms, recover_ms=recover_ms
                )
            )
        except ValueError as exc:
            raise SystemExit(f"--fail {spec!r}: {exc}")
    return failures


def _synthetic_cluster(args):
    """The shared loadtest/search-plan fixture built from the serving flags.

    One construction path keeps the two subcommands' fleets comparable:
    a frozen synthetic integer model sized to the bucket ceiling, the
    hash tokenizer, and a single-device-per-replica :class:`FleetConfig`.

    Returns:
        ``(model, tokenizer, fleet_config)``.
    """
    from .fleet import FleetConfig
    from .perf.bench import cluster_model_config
    from .perf.workloads import HashTokenizer, build_synthetic_integer_model
    from .serve import ServingConfig

    buckets = _parse_buckets(args.buckets) or (16, 32, 64)
    model_config = cluster_model_config(max_position_embeddings=buckets[-1])
    model = build_synthetic_integer_model(model_config, seed=args.seed)
    tokenizer = HashTokenizer(vocab_size=model_config.vocab_size)
    fleet_config = FleetConfig(
        serving=ServingConfig(
            max_batch_size=args.batch_size,
            max_wait_ms=args.max_wait_ms,
            buckets=buckets,
            num_devices=1,
            cache_capacity=args.cache_size,
        ),
        admit_slo_factor=args.admit_slo_factor,
    )
    return model, tokenizer, fleet_config


def cmd_loadtest(args) -> int:
    """Cluster-scale serving simulation: scenarios, autoscaling, failures.

    Runs a built-in traffic scenario through a fleet of simulated
    accelerator replicas serving a frozen synthetic integer model (no
    training — the subject is fleet dynamics, and the synthetic model is
    bit-deterministic).  Same seed, byte-identical report — including
    under ``--analytic``, which skips the model forwards entirely and
    reports identical timing at a fraction of the cost.
    """
    from .accel import AcceleratorConfig, FPGA_DEVICES
    from .fleet import (
        AutoscalePolicy,
        ReplicaSpec,
        builtin_scenarios,
        run_scenario,
        run_scenario_columnar,
    )

    catalog = builtin_scenarios()
    names = sorted(catalog) if args.scenario == "all" else [args.scenario]
    unknown = [n for n in names if n not in catalog]
    if unknown:
        raise SystemExit(
            f"unknown scenario {unknown[0]!r}; choose from {sorted(catalog) + ['all']}"
        )
    if args.replicas < 1:
        raise SystemExit(f"--replicas must be >= 1, got {args.replicas}")

    device_names = [d.strip() for d in args.devices.split(",") if d.strip()]
    for name in device_names:
        if name not in FPGA_DEVICES:
            raise SystemExit(f"unknown device {name!r}; choose {sorted(FPGA_DEVICES)}")
    accel_config = AcceleratorConfig(
        num_pus=args.pus, num_pes=args.pes, num_multipliers=args.multipliers
    )
    specs = [
        ReplicaSpec(accel_config=accel_config, device=FPGA_DEVICES[device_names[i % len(device_names)]])
        for i in range(args.replicas)
    ]

    model, tokenizer, fleet_config = _synthetic_cluster(args)
    autoscale = (
        AutoscalePolicy(
            min_replicas=args.min_replicas,
            max_replicas=args.max_replicas,
            interval_ms=args.scale_interval_ms,
        )
        if args.autoscale
        else None
    )
    failures = _parse_failures(args.fail)
    chaos = None
    if args.chaos_plan:
        from .fleet import load_chaos_plan

        try:
            chaos = load_chaos_plan(args.chaos_plan)
        except (OSError, ValueError, KeyError, TypeError) as exc:
            raise SystemExit(f"--chaos-plan {args.chaos_plan}: {exc}")
    resilience = None
    if (
        args.retries > 0
        or args.hedge
        or args.breaker
        or args.brownout
        or args.timeout_ms is not None
    ):
        from .fleet import ResiliencePolicy

        try:
            resilience = ResiliencePolicy(
                max_retries=args.retries,
                backoff_base_ms=args.retry_backoff_ms,
                retry_budget_ratio=args.retry_budget,
                hedge=args.hedge,
                hedge_factor=args.hedge_factor,
                timeout_ms=args.timeout_ms,
                breaker=args.breaker,
                brownout=args.brownout,
            )
        except ValueError as exc:
            raise SystemExit(f"resilience flags: {exc}")
    # In a fixed fleet the replica ids are exactly 0..replicas-1, so an id
    # beyond that is a typo.  With --autoscale, churn mints fresh ids
    # without bound (ids are never reused), so any id may come to exist;
    # failing one that never does is a documented no-op.
    if not args.autoscale:
        for failure in failures:
            if failure.replica_id >= args.replicas:
                raise SystemExit(
                    f"--fail targets replica {failure.replica_id}, but at most "
                    f"{args.replicas} replica(s) can exist in this run"
                )

    if args.shards < 1:
        raise SystemExit(f"--shards must be >= 1, got {args.shards}")
    if (args.shards > 1 or args.shard_procs) and not args.columnar:
        raise SystemExit("--shards/--shard-procs require --columnar")

    obs_requested = bool(args.metrics_out or args.trace_out or args.windows)
    if obs_requested and len(names) != 1:
        raise SystemExit(
            "--metrics-out/--trace-out/--windows dump one run's streams; "
            "pick a single --scenario (not 'all')"
        )
    if args.window_ms <= 0:
        raise SystemExit(f"--window-ms must be > 0, got {args.window_ms}")

    import contextlib
    import pathlib

    reports = []
    with contextlib.ExitStack() as stack:
        obs = None
        if obs_requested:
            from .obs import FleetObserver

            windows_stream = None
            if args.windows:
                path = pathlib.Path(args.windows)
                path.parent.mkdir(parents=True, exist_ok=True)
                windows_stream = stack.enter_context(open(path, "w"))
            obs = FleetObserver(
                window_ms=args.window_ms, windows_stream=windows_stream
            )
        for name in names:
            if args.columnar:
                report = run_scenario_columnar(
                    name,
                    model,
                    tokenizer,
                    specs,
                    fleet_config,
                    autoscale=autoscale,
                    failures=failures,
                    seed=args.seed,
                    rate_scale=args.rate_scale,
                    duration_scale=args.duration_scale,
                    shards=args.shards,
                    shard_processes=args.shard_procs,
                    obs=obs,
                    chaos=chaos,
                    resilience=resilience,
                )
            else:
                report = run_scenario(
                    name,
                    model,
                    tokenizer,
                    specs,
                    fleet_config,
                    autoscale=autoscale,
                    failures=failures,
                    seed=args.seed,
                    rate_scale=args.rate_scale,
                    duration_scale=args.duration_scale,
                    analytic=args.analytic,
                    obs=obs,
                    chaos=chaos,
                    resilience=resilience,
                )
            print(report.render())
            print()
            reports.append(report)
    if obs is not None:
        if args.metrics_out:
            path = pathlib.Path(args.metrics_out)
            path.parent.mkdir(parents=True, exist_ok=True)
            path.write_text(obs.render_prometheus())
            print(f"[loadtest] wrote {path}")
        if args.trace_out:
            path = pathlib.Path(args.trace_out)
            path.parent.mkdir(parents=True, exist_ok=True)
            path.write_text(obs.trace_json())
            print(f"[loadtest] wrote {path}")
        if args.windows:
            print(
                f"[loadtest] wrote {args.windows} "
                f"({len(obs.window_lines())} window(s))"
            )
    if args.json:
        import json
        import pathlib

        path = pathlib.Path(args.json)
        path.parent.mkdir(parents=True, exist_ok=True)
        # Always a list, so consumers see one shape regardless of how many
        # scenarios ran.
        docs = [json.loads(r.to_json()) for r in reports]
        path.write_text(json.dumps(docs, indent=2, sort_keys=True) + "\n")
        print(f"[loadtest] wrote {path}")
    return 0


def cmd_metrics(args) -> int:
    """Render/validate observability dumps written by ``loadtest``.

    Reads back any of the three artifacts — a Prometheus text dump, a
    window JSONL stream, a Chrome trace JSON — validates that they parse,
    and prints a deterministic summary.  Exists so CI can smoke the
    formats without a Prometheus server or a trace viewer.
    """
    import json
    import pathlib

    from .obs import parse_prometheus

    if not (args.prom or args.windows or args.trace):
        raise SystemExit("metrics: pass at least one of --prom/--windows/--trace")

    if args.prom:
        text = pathlib.Path(args.prom).read_text()
        families = parse_prometheus(text)
        print(f"[metrics] {args.prom}: {len(families)} metric familie(s)")
        for family in sorted(families):
            samples = families[family]
            if list(samples) == [family]:
                print(f"  {family} = {_render_metric_value(samples[family])}")
            else:
                print(f"  {family}:")
                for key in sorted(samples):
                    print(f"    {key} = {_render_metric_value(samples[key])}")

    if args.windows:
        lines = pathlib.Path(args.windows).read_text().splitlines()
        docs = [json.loads(line) for line in lines if line]
        busy = [d for d in docs if d["arrivals"] or d["completions"]]
        worst = max((d["latency_p99_ms"] for d in docs), default=0.0)
        shed = sum(d["shed_total"] for d in docs)
        print(
            f"[metrics] {args.windows}: {len(docs)} window(s), "
            f"{len(busy)} non-empty, worst windowed p99 "
            f"{worst:.2f} ms, {shed} shed"
        )

    if args.trace:
        doc = json.loads(pathlib.Path(args.trace).read_text())
        events = doc["traceEvents"]
        by_phase: dict = {}
        for event in events:
            by_phase[event["ph"]] = by_phase.get(event["ph"], 0) + 1
        kinds = ", ".join(f"{k}={by_phase[k]}" for k in sorted(by_phase))
        print(f"[metrics] {args.trace}: {len(events)} trace event(s) ({kinds})")
    return 0


def _render_metric_value(value: float) -> str:
    return str(int(value)) if float(value).is_integer() else repr(value)


def cmd_obs(args) -> int:
    """Analyze observability artifacts: ``report``, ``alerts``, ``diff``.

    The reading side of the obs layer (``repro.obs.analysis``): a
    deterministic per-run report (attribution + critical paths), an
    offline burn-rate alert replay over a windows stream, and a ranked
    regression-attribution diff between two runs.  All output is a pure
    function of the artifact bytes, so CI byte-diffs it across reruns.
    """
    from .obs.analysis import RunArtifacts, diff_runs, render_diff, render_report

    if args.obs_cmd == "report":
        if not (args.prom or args.windows or args.trace):
            raise SystemExit(
                "obs report: pass at least one of --prom/--windows/--trace"
            )
        artifacts = RunArtifacts.load(
            prom_path=args.prom,
            windows_path=args.windows,
            trace_path=args.trace,
        )
        print(render_report(artifacts, top=args.top), end="")
        return 0

    if args.obs_cmd == "alerts":
        artifacts = RunArtifacts.load(windows_path=args.windows)
        evaluator = artifacts.alert_replay()
        print(
            f"[obs] {args.windows}: {evaluator.windows_seen} window(s), "
            f"{len(evaluator.rules)} rule(s)"
        )
        if evaluator.transitions:
            for t_ms, name, action in evaluator.transitions:
                print(f"t={t_ms:.3f}ms {action} {name}")
        else:
            print("no transitions")
        firing = sorted(n for n, f in evaluator.firing().items() if f)
        print("firing at end: " + (", ".join(firing) if firing else "none"))
        return 0

    # obs diff: each artifact flag takes a BEFORE AFTER pair
    if not (args.prom or args.windows or args.trace):
        raise SystemExit("obs diff: pass at least one of --prom/--windows/--trace")

    def side(index: int) -> RunArtifacts:
        return RunArtifacts.load(
            prom_path=args.prom[index] if args.prom else None,
            windows_path=args.windows[index] if args.windows else None,
            trace_path=args.trace[index] if args.trace else None,
        )

    report = diff_runs(side(0), side(1), top=args.top)
    print(render_diff(report), end="")
    return 0


def _design_name(report) -> str:
    """A collision-free design-point name for the planner ladder.

    The knob tuple plus BIM/frequency suffixes only when they differ from
    the defaults, so names stay short on the common spaces but distinct
    design points never alias.
    """
    config = report.config
    name = (
        f"{report.device.name}/H{config.num_pus}"
        f"N{config.num_pes}M{config.num_multipliers}"
    )
    if config.bim_type.value != "A":
        name += f"-{config.bim_type.value}"
    if config.frequency_mhz != 214.0:
        name += f"@{config.frequency_mhz:g}MHz"
    return name


def cmd_search(args) -> int:
    """Design-space exploration / SLO-driven capacity planning.

    Two modes behind one subcommand:

    - **explore** (default): sweep a named design space, price every
      candidate through the analytic stack, print the Pareto front.
    - **plan** (``--scenario``): reduce the space to its front, downselect
      a design ladder, and search fleet compositions + autoscaler policies
      with the analytic fleet simulator as the inner loop, returning the
      cheapest plan meeting the p99/shed targets.

    Both are deterministic: same arguments, byte-identical ``--json``.
    """
    from .search import (
        DEFAULT_OBJECTIVES,
        OBJECTIVES,
        PLAN_OBJECTIVES,
        SloTarget,
        builtin_spaces,
        explore,
        plan_capacity,
    )

    spaces = builtin_spaces()
    space = spaces.get(args.space)
    if space is None:
        raise SystemExit(f"unknown space {args.space!r}; choose from {sorted(spaces)}")

    if args.scenario is None:
        # ---------------- explore mode ----------------
        if args.objective is None:
            objectives = DEFAULT_OBJECTIVES
        else:
            objectives = tuple(o.strip() for o in args.objective.split(",") if o.strip())
            unknown = [o for o in objectives if o not in OBJECTIVES]
            if unknown:
                raise SystemExit(
                    f"unknown objective {unknown[0]!r}; choose from {sorted(OBJECTIVES)}"
                )
        result = explore(
            space,
            seq_len=args.seq_len,
            batch_size=args.eval_batch_size,
            objectives=objectives,
            budget=args.budget,
            seed=args.seed,
        )
        print(result.render())
    else:
        # ---------------- plan mode ----------------
        from .fleet import ReplicaSpec, builtin_scenarios

        catalog = builtin_scenarios()
        if args.scenario not in catalog:
            raise SystemExit(
                f"unknown scenario {args.scenario!r}; choose from {sorted(catalog)}"
            )
        objective = args.objective or "replica-seconds"
        if objective not in PLAN_OBJECTIVES:
            raise SystemExit(
                f"unknown plan objective {objective!r}; choose from {PLAN_OBJECTIVES}"
            )
        if args.plan_designs < 1:
            raise SystemExit(f"--plan-designs must be >= 1, got {args.plan_designs}")

        # The design ladder: the space's Pareto front, downselected evenly
        # along the latency axis (always keeping the fastest and slowest
        # members) so the planner sees the whole strength range.
        front = explore(space, seq_len=args.seq_len, seed=args.seed).front
        if not front:
            raise SystemExit(f"space {args.space!r} has no feasible design point")
        by_latency = sorted(
            front, key=lambda r: (r.latency_ms, r.device.name, r.config.num_pus,
                                  r.config.num_pes, r.config.num_multipliers)
        )
        count = min(args.plan_designs, len(by_latency))
        picks = sorted(
            {round(i * (len(by_latency) - 1) / max(1, count - 1)) for i in range(count)}
        )
        # Explicit names: the default ReplicaSpec label omits BIM type and
        # frequency, so ladder members from a space sweeping those axes
        # would otherwise collide.
        designs = [
            ReplicaSpec(
                accel_config=by_latency[i].config,
                device=by_latency[i].device,
                name=_design_name(by_latency[i]),
            )
            for i in picks
        ]

        chaos = None
        if getattr(args, "chaos_plan", None):
            from .fleet import load_chaos_plan

            try:
                chaos = load_chaos_plan(args.chaos_plan)
            except (OSError, ValueError, KeyError, TypeError) as exc:
                raise SystemExit(f"--chaos-plan {args.chaos_plan}: {exc}")

        model, tokenizer, fleet_config = _synthetic_cluster(args)
        scenario = catalog[args.scenario]
        p99_target = args.p99_target
        if p99_target is None:
            p99_target = min(t.slo_ms for t in scenario.tenants)
        result = plan_capacity(
            args.scenario,
            designs,
            SloTarget(p99_ms=p99_target, max_shed_rate=args.max_shed_rate),
            model,
            tokenizer,
            fleet_config=fleet_config,
            max_replicas=args.max_replicas,
            objective=objective,
            include_autoscale=not args.no_autoscale,
            budget=args.budget,
            seed=args.seed,
            rate_scale=args.rate_scale,
            duration_scale=args.duration_scale,
            chaos=chaos,
        )
        print(result.render())

    if args.json:
        import pathlib

        path = pathlib.Path(args.json)
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(result.to_json())
        print(f"[search] wrote {path}")
    return 0


def cmd_bench(args) -> int:
    """Run the pinned perf suites; gate against committed BENCH_*.json.

    For each suite the flow is: run → compare against the existing
    ``BENCH_<suite>.json`` (if any, and unless ``--no-check``) → rewrite the
    file with the fresh results.  Any gated metric more than ``--tolerance``
    worse than the baseline fails the command with exit code 1 — the file
    is still rewritten so ``git diff`` shows exactly what moved.  A
    profile mismatch (e.g. a ``--quick`` run over a committed full-profile
    baseline) leaves the baseline untouched: quick numbers must never
    silently replace the full-profile gate (``--no-check`` overrides).
    """
    import pathlib

    from .perf import bench, regression

    suites = list(bench.SUITES) if args.suite == "all" else [args.suite]
    out_dir = pathlib.Path(args.out_dir)
    failures = []
    skipped = []
    for suite in suites:
        result = bench.run_suite(suite, quick=args.quick)
        print(bench.render_result(result))
        path = bench.result_path(out_dir, suite)
        baseline = bench.load_result(path)
        write = True
        if baseline is not None and not args.no_check:
            try:
                regressions = regression.compare_runs(
                    baseline, result, tolerance=args.tolerance
                )
            except ValueError as mismatch:
                write = False
                skipped.append(suite)
                print(
                    f"[bench] {suite}: {mismatch}; leaving {path} untouched "
                    "(use --no-check or another --out-dir to write anyway)"
                )
            else:
                for item in regressions:
                    print(f"[bench] REGRESSION ({suite}): {item.render()}")
                failures.extend(regressions)
        if write:
            bench.write_result(result, path)
            print(f"[bench] wrote {path}")
    if failures:
        print(
            f"[bench] FAILED: {len(failures)} metric(s) regressed more than "
            f"{args.tolerance * 100:.0f}% vs. the committed baseline"
        )
        return 1
    if skipped:
        print(
            f"[bench] done, but the regression gate did NOT run for: "
            f"{', '.join(skipped)} (baseline mismatch)"
        )
    else:
        print("[bench] OK: no regressions beyond tolerance")
    return 0


def _add_serving_flags(parser, max_wait_ms: float = 10.0, cache_size: int = 256):
    """The shared serving-policy surface of ``serve`` and ``loadtest``.

    One flag set configures :class:`~repro.serve.ServingConfig` wherever a
    serving engine appears — per-node (``serve``) or per-replica
    (``loadtest``).
    """
    parser.add_argument("--batch-size", type=int, default=8)
    parser.add_argument(
        "--max-wait-ms", type=float, default=max_wait_ms,
        help="batching deadline: max queueing before a partial flush",
    )
    parser.add_argument(
        "--buckets", default=None,
        help="comma-separated padded sequence lengths, e.g. 16,32,64",
    )
    parser.add_argument(
        "--cache-size", "--cache-capacity", dest="cache_size", type=int,
        default=cache_size, help="LRU tokenization cache entries",
    )


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(prog="repro", description=__doc__)
    sub = parser.add_subparsers(dest="command", required=True)

    train = sub.add_parser("train", help="train a float BERT on a synthetic task")
    train.add_argument("--task", default="sst2")
    train.add_argument("--out", required=True)
    train.add_argument("--epochs", type=int, default=6)
    train.add_argument("--lr", type=float, default=1e-3)
    train.add_argument("--hidden", type=int, default=16)
    train.add_argument("--layers", type=int, default=2)
    train.add_argument("--heads", type=int, default=4)
    train.add_argument("--seed", type=int, default=7)
    train.set_defaults(func=cmd_train)

    quantize = sub.add_parser("quantize", help="QAT or PTQ quantize a checkpoint")
    quantize.add_argument("--checkpoint", required=True)
    quantize.add_argument("--out", required=True)
    quantize.add_argument("--task", default="sst2")
    quantize.add_argument("--weight-bits", type=int, default=4)
    quantize.add_argument("--act-bits", type=int, default=8)
    quantize.add_argument("--epochs", type=int, default=1)
    quantize.add_argument("--lr", type=float, default=2e-4)
    quantize.add_argument("--ptq", action="store_true", help="calibrate only, no QAT")
    quantize.add_argument("--seed", type=int, default=7)
    quantize.set_defaults(func=cmd_quantize)

    evaluate = sub.add_parser("evaluate", help="evaluate a checkpoint")
    evaluate.add_argument("--checkpoint", required=True)
    evaluate.add_argument("--task", default="sst2")
    evaluate.add_argument("--integer", action="store_true", help="use the integer engine")
    evaluate.add_argument("--seed", type=int, default=7)
    evaluate.set_defaults(func=cmd_evaluate)

    simulate = sub.add_parser("simulate", help="evaluate an accelerator design point")
    simulate.add_argument("--device", default="ZCU102")
    simulate.add_argument("--pus", type=int, default=12)
    simulate.add_argument("--pes", type=int, default=8)
    simulate.add_argument("--multipliers", type=int, default=16)
    simulate.add_argument("--seq-len", type=int, default=128)
    simulate.add_argument(
        "--json",
        help="also write the report as JSON here (same shape as search's "
        "per-candidate entries)",
    )
    simulate.set_defaults(func=cmd_simulate)

    compare = sub.add_parser("compare", help="Table IV platform comparison")
    compare.set_defaults(func=cmd_compare)

    serve = sub.add_parser(
        "serve", help="trace-driven dynamic-batching serving simulation"
    )
    serve.add_argument("--task", default="sst2")
    serve.add_argument("--checkpoint", help="quantized checkpoint (else quick PTQ)")
    serve.add_argument("--requests", type=int, default=64)
    _add_serving_flags(serve)
    serve.add_argument("--num-devices", type=int, default=1)
    serve.add_argument("--mean-gap-ms", type=float, default=2.0)
    serve.add_argument("--slo-ms", type=float, default=None)
    serve.add_argument("--device", default="ZCU102")
    serve.add_argument("--seed", type=int, default=7)
    serve.set_defaults(func=cmd_serve)

    loadtest = sub.add_parser(
        "loadtest",
        help="cluster-scale serving simulation: scenarios, autoscaling, failures",
    )
    loadtest.add_argument(
        "--scenario", default="steady",
        help="built-in scenario name (steady / diurnal / flash-crowd / ramp / "
        "multi-tenant) or 'all'",
    )
    loadtest.add_argument("--replicas", type=int, default=2)
    loadtest.add_argument(
        "--devices", default="ZCU102",
        help="comma-separated FPGA parts cycled over replicas (e.g. ZCU102,ZCU111)",
    )
    loadtest.add_argument("--pus", type=int, default=12)
    loadtest.add_argument("--pes", type=int, default=8)
    loadtest.add_argument("--multipliers", type=int, default=16)
    _add_serving_flags(loadtest, max_wait_ms=5.0, cache_size=512)
    loadtest.add_argument(
        "--admit-slo-factor", type=float, default=2.0,
        help="shed when projected latency exceeds this multiple of the tenant SLO",
    )
    loadtest.add_argument("--autoscale", action="store_true")
    loadtest.add_argument("--min-replicas", type=int, default=1)
    loadtest.add_argument("--max-replicas", type=int, default=6)
    loadtest.add_argument("--scale-interval-ms", type=float, default=20.0)
    loadtest.add_argument(
        "--fail", action="append", metavar="REPLICA@FAIL_MS[:RECOVER_MS]",
        help="inject a replica failure (repeatable)",
    )
    loadtest.add_argument(
        "--chaos-plan", metavar="PATH",
        help="load a seeded chaos plan (JSON: fail-stop, gray windows, "
        "correlated zone outages; see docs/robustness.md) and inject it "
        "alongside any --fail events",
    )
    loadtest.add_argument(
        "--retries", type=int, default=0, metavar="N",
        help="retry shed/timed-out admissions up to N times with seeded "
        "exponential backoff + jitter (0 = off)",
    )
    loadtest.add_argument(
        "--retry-backoff-ms", type=float, default=5.0,
        help="first retry delay in simulated ms (doubles per attempt)",
    )
    loadtest.add_argument(
        "--retry-budget", type=float, default=0.0, metavar="RATIO",
        help="retry-budget tokens accrued per admitted original "
        "(0 = unmetered retries)",
    )
    loadtest.add_argument(
        "--timeout-ms", type=float, default=None,
        help="shed (into the retry path) any admission whose projected "
        "completion exceeds this instead of queueing it",
    )
    loadtest.add_argument(
        "--hedge", action="store_true",
        help="duplicate risky admissions onto the second-best replica; "
        "first finisher wins, the twin is cancelled",
    )
    loadtest.add_argument(
        "--hedge-factor", type=float, default=0.75,
        help="hedge when projected latency > factor * SLO",
    )
    loadtest.add_argument(
        "--breaker", action="store_true",
        help="per-replica circuit breaker over windowed straggle rates "
        "(closed/open/half-open)",
    )
    loadtest.add_argument(
        "--brownout", action="store_true",
        help="degrade the admission bound stepwise under overload before "
        "shedding (brownout ladder)",
    )
    loadtest.add_argument(
        "--rate-scale", type=float, default=1.0,
        help="multiply the whole arrival-rate curve (scale traffic volume)",
    )
    loadtest.add_argument(
        "--duration-scale", type=float, default=1.0,
        help="stretch the scenario duration (and its burst windows) in time",
    )
    loadtest.add_argument(
        "--analytic", action="store_true",
        help="latency-only execution: skip model forwards, keep the exact "
        "simulator timing (byte-identical report, orders of magnitude "
        "faster — the mode for million-request traces)",
    )
    loadtest.add_argument(
        "--columnar", action="store_true",
        help="run the columnar analytic engine: the same simulation over "
        "numpy columns and memoized price tables (byte-identical report, "
        "another order of magnitude over --analytic — the mode for "
        "100M-request traces)",
    )
    loadtest.add_argument(
        "--shards", type=int, default=1,
        help="with --columnar: split the run into this many deterministic "
        "time windows (any count gives byte-identical reports)",
    )
    loadtest.add_argument(
        "--shard-procs", action="store_true",
        help="with --columnar: run each shard window in a forked "
        "subprocess (state crosses via pickle; same bytes)",
    )
    loadtest.add_argument("--json", help="also write the report as JSON here")
    loadtest.add_argument(
        "--metrics-out", metavar="PATH",
        help="write a Prometheus text-format metrics dump here (single "
        "scenario only; attaching observability never changes the report)",
    )
    loadtest.add_argument(
        "--trace-out", metavar="PATH",
        help="write a Chrome trace-event JSON here (open in "
        "chrome://tracing or Perfetto; simulated clock, deterministic)",
    )
    loadtest.add_argument(
        "--windows", metavar="PATH",
        help="stream rolling-window JSONL here during the run (windowed "
        "p99/goodput/shed-rate/queue-depth plus scale and failure events)",
    )
    loadtest.add_argument(
        "--window-ms", type=float, default=20.0,
        help="rolling-window width in simulated milliseconds",
    )
    loadtest.add_argument("--seed", type=int, default=7)
    loadtest.set_defaults(func=cmd_loadtest)

    metrics = sub.add_parser(
        "metrics", help="render/validate loadtest observability dumps"
    )
    metrics.add_argument("--prom", help="Prometheus text dump from --metrics-out")
    metrics.add_argument("--windows", help="window JSONL stream from --windows")
    metrics.add_argument("--trace", help="Chrome trace JSON from --trace-out")
    metrics.set_defaults(func=cmd_metrics)

    obs = sub.add_parser(
        "obs", help="analyze observability artifacts (report / alerts / diff)"
    )
    obs_sub = obs.add_subparsers(dest="obs_cmd", required=True)
    obs_report = obs_sub.add_parser(
        "report",
        help="deterministic per-run report: attribution, alerts, critical paths",
    )
    obs_report.add_argument("--prom", help="Prometheus text dump from --metrics-out")
    obs_report.add_argument("--windows", help="window JSONL stream from --windows")
    obs_report.add_argument("--trace", help="Chrome trace JSON from --trace-out")
    obs_report.add_argument(
        "--top", type=int, default=5, help="critical paths to list (default 5)"
    )
    obs_report.set_defaults(func=cmd_obs)
    obs_alerts = obs_sub.add_parser(
        "alerts", help="replay the burn-rate alert policy over a windows stream"
    )
    obs_alerts.add_argument(
        "--windows", required=True, help="window JSONL stream from --windows"
    )
    obs_alerts.set_defaults(func=cmd_obs)
    obs_diff = obs_sub.add_parser(
        "diff", help="ranked regression attribution between two runs"
    )
    obs_diff.add_argument(
        "--prom", nargs=2, metavar=("BEFORE", "AFTER"),
        help="two Prometheus dumps to compare",
    )
    obs_diff.add_argument(
        "--windows", nargs=2, metavar=("BEFORE", "AFTER"),
        help="two window JSONL streams to compare",
    )
    obs_diff.add_argument(
        "--trace", nargs=2, metavar=("BEFORE", "AFTER"),
        help="two Chrome traces to compare",
    )
    obs_diff.add_argument(
        "--top", type=int, default=10, help="rows per ranked section (default 10)"
    )
    obs_diff.set_defaults(func=cmd_obs)

    search = sub.add_parser(
        "search",
        help="design-space exploration / SLO-driven capacity planning",
    )
    search.add_argument(
        "--space", default="table3",
        help="named design space (table3 / small / wide)",
    )
    search.add_argument(
        "--objective", default=None,
        help="explore: comma list of Pareto objectives "
        "(latency,energy,headroom,power; default latency,energy,headroom); "
        "plan: the cost to minimize (replica-seconds | energy)",
    )
    search.add_argument(
        "--budget", type=int, default=None,
        help="explore: max candidates to evaluate (seeded sampling beyond); "
        "plan: max plan evaluations",
    )
    search.add_argument("--seq-len", type=int, default=128)
    search.add_argument(
        "--eval-batch-size", type=int, default=1,
        help="explore: batch size candidates are priced at (1 = the "
        "paper's batch-1 latency; serving flags like --batch-size "
        "configure the planner's per-replica engine instead)",
    )
    search.add_argument(
        "--scenario", default=None,
        help="switch to capacity planning against this built-in scenario",
    )
    search.add_argument(
        "--p99-target", type=float, default=None,
        help="plan: fleet-wide p99 target in ms (default: the scenario's "
        "tightest tenant SLO)",
    )
    search.add_argument(
        "--max-shed-rate", type=float, default=0.0,
        help="plan: tolerated shed fraction of submitted traffic",
    )
    search.add_argument("--max-replicas", type=int, default=3)
    search.add_argument(
        "--plan-designs", type=int, default=4,
        help="plan: design-ladder size downselected from the space's front",
    )
    search.add_argument(
        "--no-autoscale", action="store_true",
        help="plan: skip the autoscaled plan variants",
    )
    search.add_argument(
        "--chaos-plan", metavar="PATH",
        help="plan: replay every candidate under this chaos plan (JSON; "
        "see docs/robustness.md) — feasible means the targets hold both "
        "clean and under chaos (N+1 sizing by simulation)",
    )
    search.add_argument("--rate-scale", type=float, default=1.0)
    search.add_argument("--duration-scale", type=float, default=1.0)
    # The shared serving surface configures the *planner's* per-replica
    # engines (plan mode); explore mode prices bare design points and
    # only reads --eval-batch-size.
    _add_serving_flags(search, max_wait_ms=5.0, cache_size=512)
    search.add_argument(
        "--admit-slo-factor", type=float, default=2.0,
        help="plan: shed when projected latency exceeds this multiple of "
        "the tenant SLO",
    )
    search.add_argument("--json", help="also write the result as JSON here")
    search.add_argument("--seed", type=int, default=0)
    search.set_defaults(func=cmd_search)

    bench = sub.add_parser(
        "bench", help="pinned perf suites + regression gate (BENCH_*.json)"
    )
    bench.add_argument(
        "--quick", action="store_true", help="small shapes / fewer repeats (CI smoke)"
    )
    bench.add_argument(
        "--suite",
        choices=["kernels", "serve", "cluster", "fleet", "dse", "all"],
        default="all",
    )
    bench.add_argument(
        "--out-dir", default=".", help="where BENCH_<suite>.json files live"
    )
    bench.add_argument(
        "--tolerance",
        type=float,
        default=0.10,
        help="allowed relative regression before failing (0.10 = 10%%)",
    )
    bench.add_argument(
        "--no-check", action="store_true", help="emit results without gating"
    )
    bench.set_defaults(func=cmd_bench)
    return parser


def main(argv=None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    sys.exit(main())
