"""Cluster serving: flash crowds, load shedding, autoscaling, failures.

This walks the fleet layer end to end on a frozen synthetic model (no
training — the subject is cluster dynamics, and the synthetic integer
model is bit-deterministic):

1. build a deliberately *weak* single-replica fleet and replay a
   flash-crowd trace — admission control sheds the burst it cannot serve,
2. rerun the identical trace with the autoscaler on — goodput strictly
   improves as replicas join (each paying a simulator-priced cold start),
3. kill a replica mid-trace on a two-replica fleet and watch its queue
   migrate: no accepted request is lost,
4. replay step 1 on the columnar engine, sharded into 3 time windows —
   the merged report is byte-identical to the event loop's,
5. print the deterministic fleet reports (same seed, same bytes).

With ``--analytic`` the identical walk runs in latency-only mode: model
forwards are skipped, every report below is byte-identical (timing comes
from the accelerator simulator in both modes), and the whole example runs
an order of magnitude faster — the mode behind million-request traces.

Run:  python examples/loadtest.py [--analytic]
"""

import argparse

from repro.accel import AcceleratorConfig
from repro.bert import BertConfig
from repro.fleet import (
    AutoscalePolicy,
    FailureEvent,
    FleetConfig,
    ReplicaSpec,
    run_scenario,
    run_scenario_columnar,
)
from repro.perf.workloads import HashTokenizer, build_synthetic_integer_model
from repro.serve import ServingConfig


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--analytic", action="store_true",
        help="latency-only execution (identical reports, no model forwards)",
    )
    args = parser.parse_args()
    analytic = args.analytic

    # ------------------------------------------------------------------
    # a served model + a weak design point (overload must be reachable)
    # ------------------------------------------------------------------
    config = BertConfig(
        vocab_size=512,
        hidden_size=64,
        num_hidden_layers=2,
        num_attention_heads=4,
        intermediate_size=128,
        max_position_embeddings=64,
        num_labels=2,
    )
    model = build_synthetic_integer_model(config, seed=0)
    tokenizer = HashTokenizer(vocab_size=config.vocab_size)
    weak = ReplicaSpec(
        accel_config=AcceleratorConfig(num_pus=2, num_pes=2, num_multipliers=4),
        name="weak",
    )
    fleet_config = FleetConfig(
        serving=ServingConfig(
            max_batch_size=8,
            max_wait_ms=5.0,
            buckets=(16, 32, 64),
            num_devices=1,
            cache_capacity=512,
        ),
        admit_slo_factor=1.0,
    )

    # ------------------------------------------------------------------
    # 1. flash crowd vs a fixed fleet: shedding engages
    # ------------------------------------------------------------------
    fixed = run_scenario(
        "flash-crowd", model, tokenizer, [weak], fleet_config,
        seed=7, rate_scale=3.0, analytic=analytic,
    )
    print("=== flash-crowd, fixed fleet (1 weak replica) ===")
    print(fixed.render())
    assert fixed.stats.shed > 0, "the burst should overwhelm one weak replica"

    # ------------------------------------------------------------------
    # 2. same trace, autoscaler on: goodput strictly improves
    # ------------------------------------------------------------------
    autoscaled = run_scenario(
        "flash-crowd", model, tokenizer, [weak], fleet_config,
        autoscale=AutoscalePolicy(min_replicas=1, max_replicas=5, interval_ms=15.0),
        seed=7, rate_scale=3.0, analytic=analytic,
    )
    print("\n=== flash-crowd, autoscaled ===")
    print(autoscaled.render())
    assert autoscaled.stats.goodput_rps > fixed.stats.goodput_rps
    print(
        f"\ngoodput {fixed.stats.goodput_rps:.0f} -> "
        f"{autoscaled.stats.goodput_rps:.0f} req/s with "
        f"{sum(e.action == 'up' for e in autoscaled.stats.scale_events)} scale-up(s)"
    )

    # ------------------------------------------------------------------
    # 3. replica failure mid-trace: queue migrates, nothing is lost
    # ------------------------------------------------------------------
    failed = run_scenario(
        "steady", model, tokenizer, [weak, weak], fleet_config,
        failures=[FailureEvent(replica_id=0, fail_ms=60.0, recover_ms=150.0)],
        seed=7, analytic=analytic,
    )
    print("\n=== steady, replica 0 fails at 60 ms, recovers at 150 ms ===")
    print(failed.render())
    assert failed.stats.completed + failed.stats.shed == failed.stats.submitted
    assert failed.stats.shed == 0, "a surviving replica should absorb the queue"
    print("\nno accepted request lost across the failure — fleet contract holds")

    # ------------------------------------------------------------------
    # 4. the columnar engine, sharded: same trace, same bytes
    # ------------------------------------------------------------------
    columnar = run_scenario_columnar(
        "flash-crowd", model, tokenizer, [weak], fleet_config,
        seed=7, rate_scale=3.0, shards=3,
    )
    assert columnar.to_json() == fixed.to_json(), "columnar must match the event loop"
    print(
        "\ncolumnar engine (3 shards) reproduced the fixed-fleet report "
        "byte for byte — the engine behind 100M-request traces"
    )


if __name__ == "__main__":
    main()
