"""Sentence-pair entailment (the MNLI-like task) under full quantization.

Demonstrates the harder of the paper's two tasks: 3-way entailment over
premise/hypothesis pairs, including the matched vs mismatched dev sets
(MNLI-m vs MNLI-mm).  Shows the paper's observation that the harder task
loses more accuracy under quantization, and lets you query the quantized
model with your own pairs.

Run:  python examples/entailment_pairs.py
"""

import numpy as np

from repro.bert import BertConfig, BertForSequenceClassification
from repro.data import accuracy, build_tokenizer, encode_task, make_mnli_like
from repro.quant import (
    QuantConfig,
    convert_to_integer,
    evaluate,
    quantize_model,
    train_classifier,
)

LABELS = ("entailment", "neutral", "contradiction")


def main() -> None:
    # One tokenizer over the union vocabulary so matched and mismatched dev
    # sets share the embedding table (as in real MNLI).
    tokenizer = build_tokenizer()
    matched = make_mnli_like(1536, 384, matched=True, seed=7)
    mismatched = make_mnli_like(64, 384, matched=False, seed=8)

    train, dev_matched, _ = encode_task(matched, tokenizer=tokenizer, max_length=40)
    _, dev_mismatched, _ = encode_task(mismatched, tokenizer=tokenizer, max_length=40)

    config = BertConfig(
        vocab_size=len(tokenizer.vocab),
        hidden_size=16,
        num_hidden_layers=2,
        num_attention_heads=4,
        intermediate_size=32,
        max_position_embeddings=40,
        hidden_dropout_prob=0.0,
        attention_dropout_prob=0.0,
        num_labels=3,
    )
    model = BertForSequenceClassification(config, rng=np.random.default_rng(0))

    print("training float BERT on the entailment task (this takes ~30s) ...")
    train_classifier(model, train, dev_matched, epochs=24, lr=1.5e-3, seed=7)
    float_matched = evaluate(model, dev_matched)
    float_mismatched = evaluate(model, dev_mismatched)
    print(f"  float:   matched {float_matched:.2f}%   mismatched {float_mismatched:.2f}%")

    print("QAT fine-tuning FQ-BERT (w4/a8) ...")
    quant = quantize_model(model, QuantConfig.fq_bert(), rng=np.random.default_rng(1))
    train_classifier(quant, train, dev_matched, epochs=1, lr=2e-4, seed=8, keep_best=False)
    quant_matched = evaluate(quant, dev_matched)
    quant_mismatched = evaluate(quant, dev_mismatched)
    print(f"  FQ-BERT: matched {quant_matched:.2f}%   mismatched {quant_mismatched:.2f}%")
    print(
        f"  quantization drop: matched {float_matched - quant_matched:+.2f}, "
        f"mismatched {float_mismatched - quant_mismatched:+.2f} "
        "(the paper sees a larger drop on MNLI than on SST-2)"
    )

    # ------------------------------------------------------------------
    # integer-only inference on hand-written pairs
    # ------------------------------------------------------------------
    quant.eval()
    integer = convert_to_integer(quant)
    # Every training pair carries a "while <distractor>" clause, so the
    # queries keep that shape to stay in-distribution.
    pairs = [
        (
            "every engineer works in the city while some cat sleeps at home",
            "some engineer works in the city while all dog plays on the hill",
        ),
        (
            "every engineer works in the city while some cat sleeps at home",
            "some engineer never works in the city while all dog plays on the hill",
        ),
        (
            "every engineer works in the city while some cat sleeps at home",
            "some engineer reads at the market while all dog plays on the hill",
        ),
    ]
    print("\ninteger-only engine on hand-written pairs:")
    for premise, hypothesis in pairs:
        ids, mask, segments = tokenizer.encode(premise, hypothesis, max_length=40)
        prediction = integer.predict(ids[None], mask[None], segments[None])[0]
        print(f"  '{premise}' / '{hypothesis}'")
        print(f"    -> {LABELS[prediction]}")


if __name__ == "__main__":
    main()
