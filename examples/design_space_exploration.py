"""Hardware design-space exploration with the accelerator simulator.

Sweeps the (N, M) design space of the paper's accelerator on both FPGAs,
filters the points that actually fit the device, and reports the
latency/energy Pareto frontier — extending Table III's three hand-picked
points to the whole grid.  Also sweeps the clip-ablated quantization
schemes to show the accelerator requirement driving FQ-BERT: only the fully
quantized model runs integer-only.

Run:  python examples/design_space_exploration.py
"""

from repro.accel import AcceleratorConfig, AcceleratorSimulator, ZCU102, ZCU111
from repro.baselines import compare_schemes
from repro.bert import BertConfig
from repro.experiments import render_table


def sweep_design_space(model: BertConfig):
    """Evaluate every (N, M) grid point on both devices."""
    points = []
    for device in (ZCU102, ZCU111):
        for n in (4, 8, 16, 32):
            for m in (4, 8, 16, 32):
                config = AcceleratorConfig(num_pes=n, num_multipliers=m)
                report = AcceleratorSimulator(config, device).simulate(model, seq_len=128)
                points.append(report)
    return points


def pareto_frontier(reports):
    """Reports not dominated in (latency, energy-per-inference)."""
    frontier = []
    for report in reports:
        dominated = any(
            other.latency_ms <= report.latency_ms
            and other.energy_per_inference_mj <= report.energy_per_inference_mj
            and (
                other.latency_ms < report.latency_ms
                or other.energy_per_inference_mj < report.energy_per_inference_mj
            )
            for other in reports
        )
        if not dominated:
            frontier.append(report)
    return sorted(frontier, key=lambda r: r.latency_ms)


def main() -> None:
    model = BertConfig.base()
    reports = sweep_design_space(model)
    feasible = [report for report in reports if report.fits_device()]
    print(f"{len(feasible)}/{len(reports)} design points fit their device\n")

    rows = [
        [
            report.device.name,
            f"({report.config.num_pes},{report.config.num_multipliers})",
            report.resources.dsp48,
            report.latency_ms,
            report.power_watts,
            report.fps_per_watt,
        ]
        for report in pareto_frontier(feasible)
    ]
    print(
        render_table(
            ["device", "(N,M)", "DSP", "latency(ms)", "power(W)", "fps/W"],
            rows,
            title="Latency/energy Pareto frontier (feasible points)",
        )
    )

    best_efficiency = max(feasible, key=lambda r: r.fps_per_watt)
    best_latency = min(feasible, key=lambda r: r.latency_ms)
    print(
        f"\nbest fps/W: {best_efficiency.device.name} "
        f"(N={best_efficiency.config.num_pes}, M={best_efficiency.config.num_multipliers}) "
        f"at {best_efficiency.fps_per_watt:.2f} fps/W"
    )
    print(
        f"best latency: {best_latency.device.name} "
        f"(N={best_latency.config.num_pes}, M={best_latency.config.num_multipliers}) "
        f"at {best_latency.latency_ms:.2f} ms"
    )

    # ------------------------------------------------------------------
    # why FULL quantization: storage + integer-only deployability
    # ------------------------------------------------------------------
    print()
    rows = [
        [row.name, row.compression, "yes" if row.integer_only else "no"]
        for row in compare_schemes(model)
    ]
    print(
        render_table(
            ["scheme", "compression", "integer-only datapath"],
            rows,
            title="Quantization schemes: storage and deployability",
        )
    )
    print(
        "\nOnly the fully quantized model keeps every intermediate in integer\n"
        "buffers — partial schemes bounce through float softmax/LN on the host."
    )


if __name__ == "__main__":
    main()
