"""Walk the full hardware stack: compile, verify at every level, report.

This example shows the deepest layers of the reproduction:

1. **Lowering** — compile one BERT-base encoder layer to an addressed
   program: buffer placement with lifetime reuse, weight-tile planning,
   capacity checks (the paper's Sec. III-C scheduling, with addresses).
2. **Cross-model verification** — run a trained FQ-BERT through all four
   datapath implementations (QAT model, integer engine, PE-array functional
   model, cycle-accurate PU) and print the agreement report.
3. **Cycle-law certification** — demonstrate that the cycle-accurate PU
   matches the closed-form timing law the fast models charge.

Run:  python examples/hardware_verification.py
"""

import numpy as np

from repro.accel import (
    AcceleratorConfig,
    Bim,
    ProcessingUnitRTL,
    analytic_matvec_cycles,
    lower_layer,
    lowering_report,
)
from repro.accel.verification import verify_stack
from repro.bert import BertConfig, BertForSequenceClassification
from repro.data import encode_task, make_sst2_like
from repro.experiments import render_table
from repro.quant import FixedPointMultiplier, QuantConfig, quantize_model, train_classifier


def main() -> None:
    # ------------------------------------------------------------------
    # 1. compile one BERT-base layer for the ZCU102 (8,16) design point
    # ------------------------------------------------------------------
    accel = AcceleratorConfig.zcu102_n8_m16()
    program = lower_layer(BertConfig.base(), accel, seq_len=128)
    report = lowering_report(program)
    print("lowered one BERT-base encoder layer:")
    print(f"  instructions: {report['instructions']}")
    print(f"  DRAM traffic: {report['dram_bytes_per_layer'] / 1e6:.2f} MB/layer")
    rows = [
        [name.replace("peak_util_", ""), f"{value * 100:.0f}%"]
        for name, value in report.items()
        if name.startswith("peak_util_")
    ]
    print(render_table(["buffer", "peak utilization"], rows))
    print(f"  tensor placements: "
          + ", ".join(f"{name}@{region.buffer}+{region.offset}"
                      for name, region in program.tensor_regions.items()))

    # ------------------------------------------------------------------
    # 2. train a small FQ-BERT and verify the whole stack
    # ------------------------------------------------------------------
    print("\ntraining a small FQ-BERT for stack verification ...")
    task = make_sst2_like(256, 128, seed=3)
    train, dev, tokenizer = encode_task(task, max_length=16)
    config = BertConfig.tiny(
        vocab_size=len(tokenizer.vocab), num_labels=2, max_position_embeddings=16
    )
    model = BertForSequenceClassification(config, rng=np.random.default_rng(0))
    train_classifier(model, train, dev, epochs=3, lr=1.5e-3, seed=0)
    quant = quantize_model(model, QuantConfig.fq_bert(), rng=np.random.default_rng(1))
    train_classifier(quant, train, dev, epochs=1, lr=2e-4, seed=1, keep_best=False)

    batch = dev.full_batch()
    verification = verify_stack(
        quant, batch.input_ids[:8], batch.attention_mask[:8], batch.token_type_ids[:8]
    )
    print()
    print(verification.render())
    if not verification.passed:
        raise SystemExit(1)

    # ------------------------------------------------------------------
    # 3. cycle-law certification on a standalone matvec
    # ------------------------------------------------------------------
    rng = np.random.default_rng(7)
    out_dim, k, n, m = 24, 40, 4, 8
    weights = rng.integers(-7, 8, size=(out_dim, k))
    x = rng.integers(-127, 128, size=k)
    pu = ProcessingUnitRTL(n, Bim(m), FixedPointMultiplier.from_float(0.01))
    pu.run_matvec(weights, x)
    law = analytic_matvec_cycles(out_dim, k, n, Bim(m))
    print(
        f"\ncycle-accurate PU: {pu.cycle} cycles for a {out_dim}x{k} matvec "
        f"on N={n}, M={m}; closed-form law: {law} "
        f"({'exact match' if pu.cycle == law else 'MISMATCH'})"
    )


if __name__ == "__main__":
    main()
