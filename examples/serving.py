"""Serving: dynamic-batching inference over the integer FQ-BERT engine.

This walks the full serving path on a synthetic sentiment task:

1. fine-tune a tiny FQ-BERT and freeze it to the integer engine,
2. stand up a :class:`repro.serve.ServingEngine` — LRU tokenization cache,
   sequence-length-bucketed dynamic batcher, and a router balancing two
   simulated ZCU102 accelerator instances,
3. replay a Poisson request trace through it,
4. report latency percentiles, throughput, cache hits, and padding
   efficiency — and verify the served logits match one-at-a-time inference
   bit for bit.

Run:  python examples/serving.py
"""

import numpy as np

from repro.bert import BertConfig, BertForSequenceClassification
from repro.data import encode_task, make_sst2_like
from repro.quant import QuantConfig, convert_to_integer, quantize_model, train_classifier
from repro.serve import ServingConfig, ServingEngine, generate_trace


def main() -> None:
    # ------------------------------------------------------------------
    # 1. a served model: train, quantize, freeze to integers
    # ------------------------------------------------------------------
    task = make_sst2_like(num_train=768, num_dev=384, seed=7)
    train, dev, tokenizer = encode_task(task, max_length=24)
    config = BertConfig.tiny(
        vocab_size=len(tokenizer.vocab), num_labels=2, max_position_embeddings=24
    )
    model = BertForSequenceClassification(config, rng=np.random.default_rng(0))
    print("training float BERT ...")
    train_classifier(model, train, dev, epochs=4, lr=1e-3, seed=0)
    quant = quantize_model(model, QuantConfig.fq_bert(), rng=np.random.default_rng(1))
    print("QAT fine-tuning FQ-BERT ...")
    train_classifier(quant, train, dev, epochs=2, lr=2e-4, seed=1, keep_best=False)
    quant.eval()
    integer_model = convert_to_integer(quant)

    # ------------------------------------------------------------------
    # 2. the serving engine: cache + batcher + 2-device router
    # ------------------------------------------------------------------
    engine = ServingEngine(
        integer_model,
        tokenizer,
        ServingConfig(
            max_batch_size=8,
            max_wait_ms=5.0,
            buckets=(8, 16, 24),
            num_devices=2,
            cache_capacity=256,
            slo_ms=25.0,
        ),
    )

    # ------------------------------------------------------------------
    # 3. replay a deterministic Poisson trace (repeats -> cache hits)
    # ------------------------------------------------------------------
    pool = [(ex.text_a, ex.text_b) for ex in task.dev[:64]]
    trace = generate_trace(pool, num_requests=256, mean_interarrival_ms=1.0, seed=7)
    print(f"\nreplaying {len(trace)} requests over {len(pool)} distinct texts ...")
    results = engine.run_trace(trace)

    # ------------------------------------------------------------------
    # 4. stats + the bit-exactness guarantee
    # ------------------------------------------------------------------
    print("\n" + engine.stats().render())

    sample = results[0]
    ids, mask, segments = tokenizer.encode(
        trace[0].text_a, trace[0].text_b, max_length=24
    )
    solo = integer_model.forward(ids[None], mask[None], segments[None])[0]
    assert np.array_equal(sample.logits, solo)
    print(
        f"\nrequest 0: '{trace[0].text_a}' -> {task.label_names[sample.prediction]} "
        f"(bucket {sample.bucket}, device {sample.device_id}, "
        f"{sample.latency_ms:.2f} ms; logits bit-match solo inference)"
    )


if __name__ == "__main__":
    main()
