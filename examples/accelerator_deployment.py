"""Deploy FQ-BERT onto the simulated FPGA accelerator, end to end.

The full hardware story of the paper:

1. train + QAT-quantize a model (as in quickstart),
2. freeze to the integer engine,
3. **verify the accelerator datapath bit-for-bit** against the integer
   engine (PE array in 8x4 and 8x8 BIM modes, LUT softmax core, 3-stage
   fixed-point LN core) — the golden-model check a real RTL flow runs,
4. report latency / resources / power of the deployment on ZCU102 and
   ZCU111, plus the CPU/GPU comparison for the same workload.

Run:  python examples/accelerator_deployment.py
"""

import numpy as np

from repro.accel import (
    AcceleratorConfig,
    AcceleratorSimulator,
    CPU_I7_8700,
    GPU_K80,
    ZCU102,
    ZCU111,
    build_encoder_workload,
)
from repro.baselines import simulate_baseline
from repro.bert import BertConfig, BertForSequenceClassification
from repro.data import encode_task, make_sst2_like
from repro.experiments import render_table
from repro.quant import QuantConfig, convert_to_integer, quantize_model, train_classifier


def train_small_fq_bert():
    """A quick FQ-BERT for the functional verification step."""
    task = make_sst2_like(num_train=256, num_dev=128, seed=3)
    train, dev, tokenizer = encode_task(task, max_length=16)
    config = BertConfig.tiny(
        vocab_size=len(tokenizer.vocab), num_labels=2, max_position_embeddings=16
    )
    model = BertForSequenceClassification(config, rng=np.random.default_rng(0))
    train_classifier(model, train, dev, epochs=3, lr=1.5e-3, seed=0)
    quant = quantize_model(model, QuantConfig.fq_bert(), rng=np.random.default_rng(1))
    train_classifier(quant, train, dev, epochs=1, lr=2e-4, seed=1, keep_best=False)
    quant.eval()
    return quant, dev


def main() -> None:
    # ------------------------------------------------------------------
    # functional verification: accelerator datapath == integer engine
    # ------------------------------------------------------------------
    print("training a small FQ-BERT for datapath verification ...")
    quant_model, dev = train_small_fq_bert()
    integer_model = convert_to_integer(quant_model)

    simulator = AcceleratorSimulator(
        AcceleratorConfig(num_pus=4, num_pes=4, num_multipliers=8), ZCU102
    )
    batch = dev.full_batch()
    ids, mask = batch.input_ids[:4], batch.attention_mask[:4]
    hw_logits = simulator.run_functional(integer_model, ids, mask)
    sw_logits = integer_model.forward(ids, mask)
    exact = np.array_equal(hw_logits, sw_logits)
    print(f"  accelerator datapath bit-exact with integer engine: {exact}")
    if not exact:
        raise SystemExit("datapath mismatch — deployment aborted")

    # ------------------------------------------------------------------
    # performance evaluation at BERT-base scale (Tables III/IV)
    # ------------------------------------------------------------------
    model = BertConfig.base()
    workload = build_encoder_workload(model, seq_len=128)

    rows = []
    for name, device in (("CPU i7-8700", CPU_I7_8700), ("GPU K80", GPU_K80)):
        report = simulate_baseline(workload, device)
        rows.append([name, report.latency_ms, report.power_watts, report.fps_per_watt])

    for name, device, config in (
        ("FPGA ZCU102 (8,16)", ZCU102, AcceleratorConfig.zcu102_n8_m16()),
        ("FPGA ZCU111 (16,16)", ZCU111, AcceleratorConfig.zcu111_n16_m16()),
    ):
        report = AcceleratorSimulator(config, device).simulate(model, seq_len=128)
        rows.append([name, report.latency_ms, report.power_watts, report.fps_per_watt])

    print()
    print(
        render_table(
            ["platform", "latency(ms)", "power(W)", "fps/W"],
            rows,
            title="BERT-base (batch 1, seq 128) deployment comparison",
        )
    )

    best = max(rows, key=lambda row: row[3])
    cpu = rows[0]
    print(
        f"\nbest platform: {best[0]} — "
        f"{cpu[1] / best[1]:.2f}x faster and {best[3] / cpu[3]:.1f}x more "
        f"energy-efficient than the CPU baseline"
    )

    # ------------------------------------------------------------------
    # per-stage cycle breakdown for the chosen design (one encoder layer)
    # ------------------------------------------------------------------
    report = AcceleratorSimulator(AcceleratorConfig.zcu102_n8_m16(), ZCU102).simulate(
        model, seq_len=128
    )
    breakdown = report.schedule.breakdown()
    total = sum(breakdown.values())
    print()
    print(
        render_table(
            ["stage", "cycles/layer", "% of layer"],
            [[name, cycles, 100.0 * cycles / total] for name, cycles in breakdown.items()],
            title="ZCU102 (8,16): per-stage cycles of one encoder layer",
        )
    )


if __name__ == "__main__":
    main()
