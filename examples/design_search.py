"""Design-space search: Pareto exploration + SLO-driven capacity planning.

This walks the `repro.search` layer end to end:

1. sweep the paper's Table III knob space — H fixed at 12, N and M over
   {4, 8, 16, 32} on both FPGA parts — pricing every candidate through
   the cycle-level schedule, the calibrated resource model, and the board
   power model (memoized: re-pricing a known point is a dict lookup),
2. reduce the feasible set to the deterministic Pareto front over
   (latency, energy/inference, per-resource headroom) and check the
   paper's three hand-picked design points all sit on it,
3. hand the planner a weak/mid/default design ladder and ask for the
   cheapest fleet plan that survives a flash crowd within a 150 ms p99
   and zero shed — the inner loop is the analytic (latency-only) fleet
   simulator, so dozens of candidate plans price in under a second.

Run:  python examples/design_search.py [--budget N] [--json out.json]
"""

import argparse

from repro.accel import AcceleratorConfig
from repro.fleet import FleetConfig, ReplicaSpec
from repro.perf.bench import cluster_model_config
from repro.perf.workloads import HashTokenizer, build_synthetic_integer_model
from repro.search import SloTarget, builtin_spaces, explore, plan_capacity
from repro.serve import ServingConfig


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--budget", type=int, default=None,
        help="cap candidate evaluations (seeded sampling beyond the cap)",
    )
    parser.add_argument("--json", help="also write the exploration JSON here")
    args = parser.parse_args()

    # ------------------------------------------------------------------
    # 1 + 2: sweep the Table III knob space, reduce to the Pareto front
    # ------------------------------------------------------------------
    space = builtin_spaces()["table3"]
    result = explore(space, budget=args.budget, seed=0)
    print(result.render())

    print()
    if result.evaluated < space.size:
        print(
            f"budget sampled {result.evaluated}/{space.size} candidates — "
            "skipping the paper-point check (it needs the full grid)"
        )
    else:
        named = (
            ("ZCU102", AcceleratorConfig.zcu102_n8_m16()),
            ("ZCU102", AcceleratorConfig.zcu102_n16_m8()),
            ("ZCU111", AcceleratorConfig.zcu111_n16_m16()),
        )
        front_keys = {(r.device.name, r.config) for r in result.front}
        for device_name, config in named:
            status = (
                "on the front" if (device_name, config) in front_keys else "DOMINATED"
            )
            print(
                f"paper design point {device_name} "
                f"(N={config.num_pes}, M={config.num_multipliers}): {status}"
            )
            assert status == "on the front"

    if args.json:
        import pathlib

        path = pathlib.Path(args.json)
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(result.to_json())
        print(f"wrote {path}")

    # ------------------------------------------------------------------
    # 3: cheapest fleet plan surviving a flash crowd within SLO
    # ------------------------------------------------------------------
    print()
    model_config = cluster_model_config()
    model = build_synthetic_integer_model(model_config, seed=0)
    tokenizer = HashTokenizer(vocab_size=model_config.vocab_size)
    designs = [
        ReplicaSpec(
            accel_config=AcceleratorConfig(num_pus=2, num_pes=2, num_multipliers=4),
            name="weak",
        ),
        ReplicaSpec(
            accel_config=AcceleratorConfig(num_pus=4, num_pes=4, num_multipliers=8),
            name="mid",
        ),
        ReplicaSpec(name="default"),
    ]
    fleet_config = FleetConfig(
        serving=ServingConfig(
            max_batch_size=8,
            max_wait_ms=5.0,
            buckets=(16, 32, 64),
            num_devices=1,
            cache_capacity=512,
        )
    )
    planning = plan_capacity(
        "flash-crowd",
        designs,
        SloTarget(p99_ms=150.0),
        model,
        tokenizer,
        fleet_config=fleet_config,
        max_replicas=3,
        rate_scale=4.0,
        seed=0,
    )
    print(planning.render())
    best = planning.best
    assert best is not None and best.feasible
    print(
        f"\nThe planner prices every composition with the analytic fleet "
        f"simulator:\n{len(planning.outcomes)} plans evaluated, cheapest "
        f"feasible = {best.plan.label} at {best.replica_seconds:.3f} "
        f"replica-seconds ({best.energy_j:.3f} J)."
    )


if __name__ == "__main__":
    main()
