"""Quickstart: train, quantize, and deploy a tiny FQ-BERT in ~30 seconds.

This walks the paper's full recipe on a synthetic sentiment task:

1. train a float BERT classifier,
2. fine-tune a fully quantized FQ-BERT (4-bit weights, 8-bit activations,
   quantized scales/softmax/layer-norm) from the float checkpoint,
3. freeze it into the integer-only inference engine,
4. compare accuracy and model size.

Run:  python examples/quickstart.py
"""

import numpy as np

from repro.bert import BertConfig, BertForSequenceClassification
from repro.data import accuracy, encode_task, make_sst2_like
from repro.quant import (
    QuantConfig,
    compression_ratio,
    convert_to_integer,
    evaluate,
    quantize_model,
    train_classifier,
)


def main() -> None:
    # ------------------------------------------------------------------
    # 1. data + float model
    # ------------------------------------------------------------------
    task = make_sst2_like(num_train=768, num_dev=384, seed=7)
    train, dev, tokenizer = encode_task(task, max_length=24)
    config = BertConfig.tiny(
        vocab_size=len(tokenizer.vocab), num_labels=2, max_position_embeddings=24
    )
    model = BertForSequenceClassification(config, rng=np.random.default_rng(0))

    print("training float BERT ...")
    float_result = train_classifier(model, train, dev, epochs=4, lr=1e-3, seed=0)
    print(f"  float dev accuracy: {float_result.final_accuracy:.2f}%")

    # ------------------------------------------------------------------
    # 2. QAT fine-tune the fully quantized model (w4/a8)
    # ------------------------------------------------------------------
    qconfig = QuantConfig.fq_bert(weight_bits=4, act_bits=8)
    quant_model = quantize_model(model, qconfig, rng=np.random.default_rng(1))
    print("QAT fine-tuning FQ-BERT (w4/a8, all parts quantized) ...")
    qat_result = train_classifier(
        quant_model, train, dev, epochs=2, lr=2e-4, seed=1, keep_best=False
    )
    print(f"  FQ-BERT dev accuracy: {qat_result.final_accuracy:.2f}%")

    # ------------------------------------------------------------------
    # 3. freeze to the integer-only engine (what the FPGA executes)
    # ------------------------------------------------------------------
    quant_model.eval()
    integer_model = convert_to_integer(quant_model)
    batch = dev.full_batch()
    integer_predictions = integer_model.predict(
        batch.input_ids, batch.attention_mask, batch.token_type_ids
    )
    integer_accuracy = accuracy(integer_predictions, batch.labels)
    print(f"  integer-only engine accuracy: {integer_accuracy:.2f}%")

    qat_predictions = quant_model.predict(
        batch.input_ids, batch.attention_mask, batch.token_type_ids
    )
    agreement = float((integer_predictions == qat_predictions).mean() * 100)
    print(f"  integer engine vs QAT model prediction agreement: {agreement:.1f}%")

    # ------------------------------------------------------------------
    # 4. what this buys at BERT-base scale (the paper's Table I)
    # ------------------------------------------------------------------
    ratio = compression_ratio(BertConfig.base(), qconfig)
    print(f"\nBERT-base compression ratio under this scheme: {ratio:.2f}x (paper: 7.94x)")

    sample = "a wonderful story with a superb cast"
    ids, mask, segments = tokenizer.encode(sample, max_length=24)
    prediction = integer_model.predict(ids[None], mask[None], segments[None])[0]
    print(f"\n'{sample}' -> {task.label_names[prediction]}")


if __name__ == "__main__":
    main()
