"""Packaging for the FQ-BERT reproduction.

Plain ``setup.py`` (no pyproject) so ``pip install -e .`` and the
``python setup.py develop`` fallback both work in environments whose pip
lacks the ``wheel`` module.
"""

from setuptools import find_packages, setup

setup(
    name="fq-bert-repro",
    version="1.0.0",
    description=(
        "Reproduction of Liu, Li & Cheng (DATE 2021): fully quantized BERT, "
        "FPGA accelerator simulator, and a dynamic-batching serving engine"
    ),
    long_description=(
        "Numpy-only reproduction of 'Hardware Acceleration of Fully Quantized "
        "BERT for Efficient Natural Language Processing' — QAT/PTQ quantization "
        "flow, integer-only inference engine, cycle-level accelerator simulator, "
        "and a request-level serving layer (repro.serve) with dynamic batching, "
        "sequence-length bucketing, and multi-device routing."
    ),
    author="paper-repo-growth",
    license="MIT",
    packages=find_packages(where="src"),
    package_dir={"": "src"},
    python_requires=">=3.9",
    install_requires=["numpy"],
    extras_require={
        "test": ["pytest", "pytest-benchmark", "hypothesis"],
    },
    entry_points={
        "console_scripts": [
            "repro=repro.cli:main",
        ],
    },
    classifiers=[
        "Development Status :: 4 - Beta",
        "Intended Audience :: Science/Research",
        "License :: OSI Approved :: MIT License",
        "Programming Language :: Python :: 3",
        "Topic :: Scientific/Engineering :: Artificial Intelligence",
    ],
)
