"""Setup shim for environments whose pip lacks the wheel package.

``pip install -e .`` with modern pyproject metadata requires the ``wheel``
module; this shim lets ``python setup.py develop`` work as a fallback.
"""
from setuptools import setup

setup()
